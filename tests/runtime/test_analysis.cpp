// Static-verifier unit tests: one deliberately-broken graph fixture
// per rule in the catalog (runtime/analysis/verifier.h) pinning that
// exactly that diagnostic fires, a zero-false-positive sweep over
// every builtin workload/app graph (raw and optimized, all three
// Table 4 instances), and pins for the diagnostic renderers, the
// VerifyError contract and the annotated-DOT output. The fixtures use
// Graph's unchecked mutation hooks because the builder API refuses to
// construct most of these graphs — which is itself the point: the
// verifier is the only line of defense against a buggy *pass*.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hwparams/instance.h"
#include "runtime/analysis/verifier.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"

namespace bts::runtime {
namespace {

using analysis::Analysis;
using analysis::AnalysisOptions;
using analysis::Diagnostic;
using analysis::Severity;

GraphTraits
small_traits()
{
    GraphTraits t;
    t.max_level = 10;
    t.bootstrap_out_level = 6;
    t.delta = std::ldexp(1.0, 40);
    return t;
}

std::size_t
count_rule(const std::vector<Diagnostic>& diags, const std::string& rule)
{
    std::size_t n = 0;
    for (const Diagnostic& d : diags) n += (d.rule == rule);
    return n;
}

/** The fixture contract: exactly one diagnostic, with this rule. */
void
expect_only(const Analysis& a, const std::string& rule,
            Severity sev = Severity::kError)
{
    ASSERT_EQ(a.diags.size(), 1u)
        << analysis::render_text("fixture", a.diags);
    EXPECT_EQ(a.diags[0].rule, rule);
    EXPECT_EQ(a.diags[0].severity, sev);
}

/** A minimal healthy graph: out = (x + y) * x, rescaled, marked. */
Graph
healthy()
{
    const GraphTraits t = small_traits();
    Graph g("healthy", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    g.mark_output(g.hrescale(g.hmult(g.hadd(x, y), x)));
    return g;
}

TEST(VerifierFixture, HealthyGraphIsClean)
{
    const Analysis a = analysis::analyze(healthy());
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(a.diags.empty())
        << analysis::render_text("healthy", a.diags);
}

// ------------------------------------------------------------------
// Structure rules.
// ------------------------------------------------------------------

TEST(VerifierFixture, StructureOperandOutOfRange)
{
    Graph g = healthy();
    g.mutable_node(0).inputs[1] = 999;
    expect_only(analysis::analyze(g), "structure-operand");
}

TEST(VerifierFixture, StructureOperandDefinedAfterUse)
{
    Graph g = healthy();
    // Node 0 (hadd) now consumes node 1's result: a use-before-def.
    g.mutable_node(0).inputs[1] = g.node(1).output;
    // The swap also breaks node 1's operand count bookkeeping; only
    // assert the use-before-def rule fired.
    const Analysis a = analysis::analyze(g);
    EXPECT_GE(count_rule(a.diags, "structure-operand"), 1u);
    EXPECT_FALSE(a.ok());
}

TEST(VerifierFixture, StructureProducerBackLinkBroken)
{
    Graph g = healthy();
    g.mutable_value(g.node(0).output).producer = -1;
    // Both ends of the broken cross-link report: the node whose
    // output lost its back-link and the orphaned value itself.
    const Analysis a = analysis::analyze(g);
    ASSERT_EQ(a.diags.size(), 2u)
        << analysis::render_text("fixture", a.diags);
    for (const Diagnostic& d : a.diags) {
        EXPECT_EQ(d.rule, "structure-producer");
        EXPECT_EQ(d.severity, Severity::kError);
    }
}

TEST(VerifierFixture, StructureProducerInputClaimsNode)
{
    Graph g = healthy();
    g.mutable_value(g.input_ids()[0]).producer = 0;
    expect_only(analysis::analyze(g), "structure-producer");
}

TEST(VerifierFixture, StructureProducerDoubleMarkedOutput)
{
    Graph g = healthy();
    // The PR 7 ship bug: the same value marked as an output twice.
    g.mutable_outputs().push_back(g.outputs()[0]);
    // The duplicate mark also bumps the derived use count; the
    // structural pass stops before use counts, so exactly one fires.
    expect_only(analysis::analyze(g), "structure-producer");
}

TEST(VerifierFixture, StructureProducerPlaintextOutput)
{
    const GraphTraits t = small_traits();
    Graph g("pt-out", t);
    const Value x = g.input(6, t.delta);
    const Value p = g.plain_input(6, t.delta);
    g.mark_output(g.pmult(x, p));
    g.mutable_outputs().push_back(p.id);
    expect_only(analysis::analyze(g), "structure-producer");
}

TEST(VerifierFixture, StructureArityWrongOperandCount)
{
    Graph g = healthy();
    g.mutable_node(0).inputs.pop_back(); // hadd with one operand
    const Analysis a = analysis::analyze(g);
    // Dropping an operand also drops a use; arity is the root cause
    // and must be among the findings.
    EXPECT_GE(count_rule(a.diags, "structure-arity"), 1u);
    EXPECT_FALSE(a.ok());
}

TEST(VerifierFixture, StructureArityZeroRotation)
{
    const GraphTraits t = small_traits();
    Graph g("rot", t);
    const Value x = g.input(6, t.delta);
    g.mark_output(g.hrot(x, 1));
    g.mutable_node(0).rot_amount = 0;
    expect_only(analysis::analyze(g), "structure-arity");
}

TEST(VerifierFixture, StructureArityPlainCipherSwap)
{
    const GraphTraits t = small_traits();
    Graph g("sig", t);
    const Value x = g.input(6, t.delta);
    const Value p = g.plain_input(6, t.delta);
    g.mark_output(g.pmult(x, p));
    // pmult's plaintext slot now holds a ciphertext.
    g.mutable_node(0).inputs[1] = x.id;
    const Analysis a = analysis::analyze(g);
    EXPECT_GE(count_rule(a.diags, "structure-arity"), 1u);
    EXPECT_FALSE(a.ok());
}

TEST(VerifierFixture, StructureUseCountCorrupted)
{
    Graph g = healthy();
    g.mutable_value(g.input_ids()[0]).num_uses += 1;
    const Analysis a = analysis::analyze(g);
    expect_only(a, "structure-use-count");
    // The hint names the stake: executor frees on the use count.
    EXPECT_NE(a.diags[0].hint.find("use-after-free"), std::string::npos);
}

// ------------------------------------------------------------------
// Metadata re-inference.
// ------------------------------------------------------------------

TEST(VerifierFixture, MetaLevelCorrupted)
{
    // Corrupting the terminal value (no consumers) pins exactly one
    // finding at exactly the corrupted node.
    Graph g = healthy();
    g.mutable_value(g.node(2).output).level += 1;
    const Analysis a = analysis::analyze(g);
    expect_only(a, "meta-level");
    EXPECT_EQ(a.diags[0].node, 2);
}

TEST(VerifierFixture, MetaLevelMidChainStaysLocal)
{
    // A mid-chain corruption fires at the corrupted node and at its
    // direct consumer (whose stored output no longer follows from its
    // stored operands) — but never cascades further, because each node
    // derives from STORED operand metadata, not derived.
    Graph g = healthy();
    g.mutable_value(g.node(1).output).level += 1;
    const Analysis a = analysis::analyze(g);
    EXPECT_EQ(count_rule(a.diags, "meta-level"), 2u);
    EXPECT_EQ(a.diags[0].node, 1);
    for (const Diagnostic& d : a.diags) {
        EXPECT_EQ(d.rule, "meta-level") << analysis::to_text(d);
    }
}

TEST(VerifierFixture, MetaScaleCorrupted)
{
    Graph g = healthy();
    g.mutable_value(g.node(0).output).scale *= 1.5;
    const Analysis a = analysis::analyze(g);
    EXPECT_FALSE(a.ok());
    EXPECT_GE(count_rule(a.diags, "meta-scale"), 1u);
    // Node 0's stored output scale disagrees with its re-derivation.
    EXPECT_EQ(a.diags[0].rule, "meta-scale");
    EXPECT_EQ(a.diags[0].node, 0);
}

TEST(VerifierFixture, ScaleMismatchOnAdd)
{
    const GraphTraits t = small_traits();
    Graph g("mismatch", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    g.mark_output(g.hrescale(g.hmult(g.hadd(x, y), x)));
    // Inputs carry no derivation, so skewing one only trips the
    // add-operand agreement rule.
    g.mutable_value(y.id).scale = t.delta * 1.01;
    expect_only(analysis::analyze(g), "scale-mismatch");
}

// ------------------------------------------------------------------
// Level / noise budgets.
// ------------------------------------------------------------------

TEST(VerifierFixture, LevelBudgetExhausted)
{
    const GraphTraits t = small_traits();
    Graph g("exhausted", t);
    // cmult at level 0 is legal per-op but leaves a delta^2 value that
    // can never be rescaled: the whole-graph budget rule catches it.
    const Value x = g.input(0, t.delta);
    g.mark_output(g.cmult(x, 2.0));
    expect_only(analysis::analyze(g), "level-budget");
}

TEST(VerifierFixture, LevelBudgetModulusCapacity)
{
    const GraphTraits t = small_traits();
    Graph g("capacity", t);
    // Scale 2^{1.3 S} at level 0: no rescale owed (rounds to delta),
    // but the scale exceeds the q0 * delta^0 capacity.
    g.mark_output(g.cadd(g.input(0, std::pow(t.delta, 1.3)), 1.0));
    const Analysis a = analysis::analyze(g);
    EXPECT_FALSE(a.ok());
    EXPECT_GE(count_rule(a.diags, "level-budget"), 1u);
    EXPECT_NE(a.diags[0].message.find("capacity"), std::string::npos);
}

TEST(VerifierFixture, NoiseBudgetSelfAddChain)
{
    // Under RMS composition each self-add adds exactly 0.5 bits; a
    // fresh input starts at 0.25 * 40 = 10 noise bits against a
    // 40-bit scale, so 64 doublings exhausts the budget.
    const GraphTraits t = small_traits();
    Graph g("chain", t);
    Value v = g.input(6, t.delta);
    for (int i = 0; i < 64; ++i) v = g.hadd(v, v);
    g.mark_output(v);
    const Analysis a = analysis::analyze(g);
    EXPECT_FALSE(a.ok());
    EXPECT_GE(count_rule(a.diags, "noise-budget"), 1u);
    for (const Diagnostic& d : a.diags) {
        EXPECT_EQ(d.rule, "noise-budget") << analysis::to_text(d);
    }
}

TEST(VerifierFixture, NoiseBudgetWarnsBeforeErroring)
{
    // 52 doublings: 10 + 26 = 36 noise bits, 4 bits of headroom left —
    // under the 0.15 * 40 = 6-bit warn line but still positive.
    const GraphTraits t = small_traits();
    Graph g("warn", t);
    Value v = g.input(6, t.delta);
    for (int i = 0; i < 52; ++i) v = g.hadd(v, v);
    g.mark_output(v);
    const Analysis a = analysis::analyze(g);
    EXPECT_TRUE(a.ok()); // warnings only
    EXPECT_GE(count_rule(a.diags, "noise-budget"), 1u);
    for (const Diagnostic& d : a.diags) {
        EXPECT_EQ(d.severity, Severity::kWarning);
    }
}

TEST(VerifierFixture, NoiseFactsTrackTheChain)
{
    const GraphTraits t = small_traits();
    Graph g("facts", t);
    const Value x = g.input(6, t.delta);
    const Value s = g.hadd(x, x);
    g.mark_output(s);
    const Analysis a = analysis::analyze(g);
    ASSERT_TRUE(a.ok());
    const double S = std::log2(t.delta);
    EXPECT_NEAR(a.values[x.id].noise_bits, 0.25 * S, 1e-9);
    EXPECT_NEAR(a.values[s.id].noise_bits, 0.25 * S + 0.5, 1e-9);
    EXPECT_NEAR(a.values[s.id].budget_bits, S - 0.25 * S - 0.5, 1e-9);
    EXPECT_EQ(a.values[s.id].level, 6);
    EXPECT_EQ(a.values[s.id].uses, 1);
}

// ------------------------------------------------------------------
// Lazy-residue contract.
// ------------------------------------------------------------------

TEST(VerifierFixture, LazyContractMarkedOutput)
{
    const GraphTraits t = small_traits();
    Graph g("lazy-out", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    g.mark_output(g.hadd(x, y));
    g.mark_lazy(0); // legal per-op; illegal because it's an output
    expect_only(analysis::analyze(g), "lazy-contract");
}

TEST(VerifierFixture, LazyContractIntolerantConsumer)
{
    const GraphTraits t = small_traits();
    Graph g("lazy-use", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    const Value s = g.hadd(x, y);
    g.mark_output(g.hadd(s, x)); // hadd requires canonical residues
    g.mark_lazy(0);
    const Analysis a = analysis::analyze(g);
    expect_only(a, "lazy-contract");
    EXPECT_NE(a.diags[0].message.find("canonical"), std::string::npos);
}

TEST(VerifierFixture, LazyContractWrongKind)
{
    const GraphTraits t = small_traits();
    Graph g("lazy-kind", t);
    const Value x = g.input(6, t.delta);
    const Value m = g.cmult(x, 2.0);
    g.mark_output(g.hrescale(m));
    g.mutable_node(0).lazy = true; // builder would refuse mark_lazy
    expect_only(analysis::analyze(g), "lazy-contract");
}

// ------------------------------------------------------------------
// Evaluation-key requirements.
// ------------------------------------------------------------------

TEST(VerifierFixture, MissingKeysAllFourRules)
{
    const GraphTraits t = small_traits();
    Graph g("keys", t);
    const Value x = g.input(6, t.delta);
    const Value m = g.hrescale(g.hmult(x, x));
    const Value r = g.hrot(m, 3);
    const Value c = g.conj(r);
    g.mark_output(g.bootstrap(c));

    AnalysisOptions opts;
    opts.keys = analysis::KeySet{}; // holds nothing
    const Analysis a = analysis::analyze(g, opts);
    EXPECT_EQ(count_rule(a.diags, "missing-mult-key"), 1u);
    EXPECT_EQ(count_rule(a.diags, "missing-conj-key"), 1u);
    EXPECT_EQ(count_rule(a.diags, "missing-bootstrapper"), 1u);
    EXPECT_EQ(count_rule(a.diags, "missing-rotation-key"), 1u);
}

TEST(VerifierFixture, MissingRotationListsEveryAmountOnce)
{
    const GraphTraits t = small_traits();
    Graph g("rots", t);
    const Value x = g.input(6, t.delta);
    g.mark_output(g.hadd(g.hrot(x, 3), g.hrot(x, 5)));

    analysis::KeySet keys;
    keys.rotations = {1, 2, 4};
    AnalysisOptions opts;
    opts.keys = keys;
    const Analysis a = analysis::analyze(g, opts);
    ASSERT_EQ(count_rule(a.diags, "missing-rotation-key"), 1u);
    EXPECT_NE(a.diags[0].message.find(" 3"), std::string::npos);
    EXPECT_NE(a.diags[0].message.find(" 5"), std::string::npos);
}

TEST(VerifierFixture, PresentKeysSatisfyTheGraph)
{
    const GraphTraits t = small_traits();
    Graph g("keys-ok", t);
    const Value x = g.input(6, t.delta);
    g.mark_output(g.hrescale(g.hmult(g.hrot(x, 4), x)));

    analysis::KeySet keys;
    keys.mult = true;
    keys.rotations = {4};
    AnalysisOptions opts;
    opts.keys = keys;
    const Analysis a = analysis::analyze(g, opts);
    EXPECT_TRUE(a.diags.empty())
        << analysis::render_text("keys-ok", a.diags);
}

// ------------------------------------------------------------------
// Placement + lint rules (warnings).
// ------------------------------------------------------------------

TEST(VerifierFixture, BootstrapPlacementWastefulRefresh)
{
    const GraphTraits t = small_traits();
    Graph g("early-boot", t);
    // Refreshing a level-6 value on a 6-level budget discards all of
    // it; > 75% remaining is the warning line.
    const Value x = g.input(6, t.delta);
    g.mark_output(g.bootstrap(x));
    expect_only(analysis::analyze(g), "bootstrap-placement",
                Severity::kWarning);
}

TEST(VerifierFixture, RescaleBelowWaterline)
{
    const GraphTraits t = small_traits();
    Graph g("low-rescale", t);
    // delta^1.8 is under the delta^2 waterline but leaves the result
    // enough scale that the noise rule stays quiet.
    const Value x = g.input(6, std::pow(t.delta, 1.8));
    g.mark_output(g.hrescale(x));
    expect_only(analysis::analyze(g), "rescale-below-waterline",
                Severity::kWarning);
}

TEST(VerifierFixture, UnusedInput)
{
    const GraphTraits t = small_traits();
    Graph g("unused", t);
    const Value x = g.input(6, t.delta);
    g.input(6, t.delta); // declared, never consumed
    g.mark_output(g.cadd(x, 1.0));
    expect_only(analysis::analyze(g), "unused-input",
                Severity::kWarning);
}

TEST(VerifierFixture, DeadNode)
{
    const GraphTraits t = small_traits();
    Graph g("dead", t);
    const Value x = g.input(6, t.delta);
    g.mark_output(g.cadd(x, 1.0));
    g.cadd(x, 2.0); // result reaches no marked output
    expect_only(analysis::analyze(g), "dead-node", Severity::kWarning);
}

TEST(VerifierFixture, NoOutputs)
{
    const GraphTraits t = small_traits();
    Graph g("silent", t);
    const Value x = g.input(6, t.delta);
    g.cadd(x, 1.0);
    const Analysis a = analysis::analyze(g);
    EXPECT_TRUE(a.ok());
    EXPECT_GE(count_rule(a.diags, "no-outputs"), 1u);
    // The unmarked node is also dead; both are warnings.
    for (const Diagnostic& d : a.diags) {
        EXPECT_EQ(d.severity, Severity::kWarning);
    }
}

TEST(VerifierFixture, WellformedSubsetIgnoresLintsAndNoise)
{
    // The inter-pass verification profile must accept mid-pipeline
    // graphs that still carry dead nodes and unshared rescales.
    const GraphTraits t = small_traits();
    Graph g("mid-pipeline", t);
    const Value x = g.input(6, t.delta);
    g.mark_output(g.cadd(x, 1.0));
    g.cadd(x, 2.0); // dead
    const Analysis full = analysis::analyze(g);
    EXPECT_FALSE(full.diags.empty());
    const Analysis wf =
        analysis::analyze(g, AnalysisOptions::wellformed());
    EXPECT_TRUE(wf.diags.empty())
        << analysis::render_text("mid-pipeline", wf.diags);
}

// ------------------------------------------------------------------
// Zero-false-positive sweep: every builtin workload and application
// graph, raw and optimized, across the three Table 4 instances, lints
// with no diagnostics at all — not even warnings. This is the pin
// that keeps the noise model honest: a model that flags the paper's
// own Table 5/6 schedules is wrong, not the schedules.
// ------------------------------------------------------------------

class BuiltinSweep : public ::testing::TestWithParam<int>
{
  protected:
    hw::CkksInstance
    inst() const
    {
        switch (GetParam()) {
        case 1: return hw::ins2();
        case 2: return hw::ins3();
        default: return hw::ins1();
        }
    }
};

void
expect_clean(const Graph& g)
{
    const Analysis a = analysis::analyze(g);
    EXPECT_TRUE(a.diags.empty())
        << analysis::render_text(g.name(), a.diags);
}

TEST_P(BuiltinSweep, WorkloadGraphsLintClean)
{
    const hw::CkksInstance ins = inst();
    const GraphTraits t = traits_for(ins);
    for (const bool raw : {true, false}) {
        const passes::PassOptions popts =
            raw ? passes::PassOptions::none() : passes::PassOptions{};
        expect_clean(tmult_graph(ins, popts));
        expect_clean(
            dot_product_graph(t, t.bootstrap_out_level, 8, popts));
        expect_clean(poly_eval_graph(t, t.bootstrap_out_level,
                                     {0.3, -1.0, 0.5, 0.25}, popts));
        expect_clean(bootstrap_refresh_graph(t, popts));
    }
}

TEST_P(BuiltinSweep, ApplicationGraphsLintClean)
{
    const GraphTraits t = traits_for(inst());
    for (const bool raw : {true, false}) {
        apps::HelrConfig hc = apps::HelrConfig::paper();
        hc.optimize = !raw;
        expect_clean(apps::build_helr(hc, t).graph);

        apps::ResnetConfig rc = apps::ResnetConfig::paper();
        rc.optimize = !raw;
        expect_clean(apps::build_resnet(rc, t).graph);

        apps::SortConfig sc = apps::SortConfig::paper();
        sc.optimize = !raw;
        expect_clean(apps::build_sort(sc, t).graph);
    }
}

INSTANTIATE_TEST_SUITE_P(Table4, BuiltinSweep,
                         ::testing::Values(0, 1, 2));

// ------------------------------------------------------------------
// Renderers, VerifyError and the annotated DOT.
// ------------------------------------------------------------------

TEST(DiagnosticRender, TextLineShape)
{
    Diagnostic d;
    d.rule = "meta-level";
    d.severity = Severity::kError;
    d.node = 12;
    d.op = "hmult";
    d.value = 34;
    d.message = "stored level 3, re-derived 2";
    d.hint = "rebuild the graph";
    const std::string line = analysis::to_text(d);
    EXPECT_NE(line.find("error:"), std::string::npos);
    EXPECT_NE(line.find("[meta-level]"), std::string::npos);
    // The historical builder format, greppable either way.
    EXPECT_NE(line.find("node 12 (hmult)"), std::string::npos);
    EXPECT_NE(line.find("v34"), std::string::npos);
    EXPECT_NE(line.find("fix:"), std::string::npos);
}

TEST(DiagnosticRender, JsonCarriesCountsAndFields)
{
    Graph g = healthy();
    g.mutable_value(g.node(0).output).scale *= 2.0;
    const Analysis a = analysis::analyze(g);
    ASSERT_FALSE(a.ok());
    const std::string js = analysis::render_json(g.name(), a.diags);
    EXPECT_NE(js.find("\"graph\": \"healthy\""), std::string::npos);
    EXPECT_NE(js.find("\"errors\""), std::string::npos);
    EXPECT_NE(js.find("\"rule\": \"meta-scale\""), std::string::npos);
    EXPECT_NE(js.find("\"severity\": \"error\""), std::string::npos);
}

TEST(DiagnosticRender, VerifyOrThrowCarriesStructuredDiags)
{
    Graph g = healthy();
    g.mutable_value(g.input_ids()[0]).num_uses = 7;
    try {
        analysis::verify_or_throw(g);
        FAIL() << "expected VerifyError";
    } catch (const analysis::VerifyError& e) {
        EXPECT_EQ(e.graph_name(), "healthy");
        ASSERT_FALSE(e.diagnostics().empty());
        EXPECT_EQ(e.diagnostics()[0].rule, "structure-use-count");
        // what() renders the same report; catchable as the historical
        // std::invalid_argument builder error.
        EXPECT_NE(std::string(e.what()).find("structure-use-count"),
                  std::string::npos);
    }
    Graph ok = healthy();
    EXPECT_NO_THROW(analysis::verify_or_throw(ok));
}

TEST(DiagnosticRender, BuilderErrorsShareTheDiagnosticShape)
{
    // Satellite (f): BTS_NODE_CHECK failures throw the same
    // VerifyError the analyzer throws, with one structured diagnostic.
    const GraphTraits t = small_traits();
    Graph g("builder", t);
    const Value x = g.input(0, t.delta);
    try {
        g.hrescale(x); // level 0: builder-time rejection
        FAIL() << "expected VerifyError";
    } catch (const analysis::VerifyError& e) {
        ASSERT_EQ(e.diagnostics().size(), 1u);
        EXPECT_EQ(e.diagnostics()[0].rule, "level-budget");
        EXPECT_NE(std::string(e.what()).find("node 0 (hrescale)"),
                  std::string::npos);
    }
}

TEST(AnnotatedDot, RendersFactsAndTints)
{
    Graph g = healthy();
    const Analysis clean = analysis::analyze(g);
    const std::string dot_clean = analysis::to_annotated_dot(g, clean);
    EXPECT_NE(dot_clean.find("digraph \"healthy\""), std::string::npos);
    EXPECT_NE(dot_clean.find("noise="), std::string::npos);
    EXPECT_NE(dot_clean.find("budget="), std::string::npos);
    EXPECT_EQ(dot_clean.find("fillcolor"), std::string::npos);

    Graph bad = healthy();
    bad.mutable_value(bad.node(0).output).scale *= 2.0;
    const Analysis a = analysis::analyze(bad);
    const std::string dot_bad = analysis::to_annotated_dot(bad, a);
    EXPECT_NE(dot_bad.find("fillcolor=lightcoral"), std::string::npos);
}

} // namespace
} // namespace bts::runtime
