#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runtime/graph.h"
#include "runtime/graph_workloads.h"

namespace bts::runtime {
namespace {

GraphTraits
small_traits()
{
    GraphTraits t;
    t.max_level = 6;
    t.bootstrap_out_level = 4;
    t.delta = 1099511627776.0; // 2^40
    return t;
}

TEST(Graph, InfersLevelsAndScales)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value a = g.input(6, t.delta);
    const Value b = g.input(6, t.delta);

    const Value prod = g.hmult(a, b);
    EXPECT_EQ(g.value(prod.id).level, 6);
    EXPECT_DOUBLE_EQ(g.value(prod.id).scale, t.delta * t.delta);

    const Value res = g.hrescale(prod);
    EXPECT_EQ(g.value(res.id).level, 5);
    EXPECT_DOUBLE_EQ(g.value(res.id).scale, t.delta);

    const Value rot = g.hrot(res, 3);
    EXPECT_EQ(g.value(rot.id).level, 5);
    EXPECT_DOUBLE_EQ(g.value(rot.id).scale, t.delta);

    const Value sum = g.hadd(res, rot);
    EXPECT_EQ(g.value(sum.id).level, 5);

    const Value cm = g.cmult(sum, 0.5);
    EXPECT_DOUBLE_EQ(g.value(cm.id).scale, t.delta * t.delta);

    g.mark_output(cm);
    EXPECT_EQ(g.outputs().size(), 1u);
    EXPECT_EQ(g.num_nodes(), 5u);
}

TEST(Graph, UnequalLevelsAlignToLower)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value hi = g.input(6, t.delta);
    const Value lo = g.input(3, t.delta);
    EXPECT_EQ(g.value(g.hmult(hi, lo).id).level, 3);
    EXPECT_EQ(g.value(g.hadd(hi, lo).id).level, 3);
}

TEST(Graph, RescaleUnderflowThrows)
{
    // The graph-level image of TraceBuilder's level-underflow guard.
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value a = g.input(0, t.delta);
    EXPECT_THROW(g.hrescale(a), std::invalid_argument);
}

TEST(Graph, ModRaiseRequiresLevelZeroBootstrapDoesNot)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value fresh = g.input(6, t.delta);
    EXPECT_THROW(g.mod_raise(fresh), std::invalid_argument);
    // Bootstrap accepts any level: the refresh discards what remains,
    // so application graphs can refresh the moment they run short.
    const Value early = g.bootstrap(fresh);
    EXPECT_EQ(g.value(early.id).level, t.bootstrap_out_level);

    const Value dead = g.input(0, t.delta);
    EXPECT_EQ(g.value(g.mod_raise(dead).id).level, t.max_level);
    const Value dead2 = g.input(0, t.delta);
    const Value boot = g.bootstrap(dead2);
    EXPECT_EQ(g.value(boot.id).level, t.bootstrap_out_level);
    EXPECT_DOUBLE_EQ(g.value(boot.id).scale, t.delta);
    EXPECT_TRUE(g.uses_bootstrap());
}

TEST(Graph, HSubMirrorsHAddRules)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value a = g.input(6, t.delta);
    const Value b = g.input(3, t.delta);
    const Value d = g.hsub(a, b);
    EXPECT_EQ(g.value(d.id).level, 3);
    EXPECT_DOUBLE_EQ(g.value(d.id).scale, t.delta);
    const Value off = g.input(6, t.delta * 1.01);
    EXPECT_THROW(g.hsub(a, off), std::invalid_argument);
}

TEST(Graph, PlaintextRules)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value ct = g.input(4, t.delta);
    const Value pt_low = g.plain_input(3, t.delta);
    const Value pt_ok = g.plain_input(6, t.delta);

    // A plaintext below the ciphertext's level cannot prefix-cover it.
    EXPECT_THROW(g.pmult(ct, pt_low), std::invalid_argument);
    EXPECT_THROW(g.padd(ct, pt_low), std::invalid_argument);
    const Value prod = g.pmult(ct, pt_ok);
    EXPECT_EQ(g.value(prod.id).level, 4);
    EXPECT_DOUBLE_EQ(g.value(prod.id).scale, t.delta * t.delta);

    // Operand-kind confusion fails loudly.
    EXPECT_THROW(g.pmult(ct, ct), std::invalid_argument);
    EXPECT_THROW(g.hmult(ct, pt_ok), std::invalid_argument);
    EXPECT_THROW(g.mark_output(pt_ok), std::invalid_argument);
}

TEST(Graph, ScaleMismatchedAddThrows)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value a = g.input(4, t.delta);
    const Value b = g.input(4, t.delta * 1.01);
    EXPECT_THROW(g.hadd(a, b), std::invalid_argument);
}

TEST(Graph, UseCountsAndRotations)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    const Value a = g.input(4, t.delta);
    const Value sq = g.hmult(a, a); // double use counts twice
    EXPECT_EQ(g.value(a.id).num_uses, 2);
    g.hrot(sq, 4);
    g.hrot(sq, -2);
    g.hrot(sq, 4);
    EXPECT_EQ(g.required_rotations(), (std::vector<int>{-2, 4}));
    EXPECT_EQ(g.count_kind(OpKind::kHRot), 3);
    g.mark_output(sq);
    EXPECT_EQ(g.value(sq.id).num_uses, 4); // 3 rotations + output mark
    EXPECT_THROW(g.mark_output(sq), std::invalid_argument);
}

TEST(Graph, InputLevelBounds)
{
    const GraphTraits t = small_traits();
    Graph g("t", t);
    EXPECT_THROW(g.input(t.max_level + 1, t.delta),
                 std::invalid_argument);
    EXPECT_THROW(g.input(-1, t.delta), std::invalid_argument);
    EXPECT_THROW(g.input(3, 0.0), std::invalid_argument);
}

TEST(Graph, OpNamesExhaustiveAndUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumOpKinds; ++i) {
        const char* name = op_name(static_cast<OpKind>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate op name " << name;
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpKinds));
    // A value outside the enumerator range must fail loudly.
    EXPECT_THROW(op_name(static_cast<OpKind>(kNumOpKinds)),
                 std::logic_error);
    EXPECT_THROW(op_needs_evk(static_cast<OpKind>(kNumOpKinds)),
                 std::logic_error);
}

TEST(Graph, EvkClassification)
{
    EXPECT_TRUE(op_needs_evk(OpKind::kHMult));
    EXPECT_TRUE(op_needs_evk(OpKind::kHRot));
    EXPECT_TRUE(op_needs_evk(OpKind::kConj));
    EXPECT_TRUE(op_needs_evk(OpKind::kBootstrap));
    EXPECT_FALSE(op_needs_evk(OpKind::kPMult));
    EXPECT_FALSE(op_needs_evk(OpKind::kHSub));
    EXPECT_FALSE(op_needs_evk(OpKind::kHRescale));
    EXPECT_FALSE(op_needs_evk(OpKind::kModRaise));
}

TEST(GraphWorkloads, TmultShape)
{
    const auto inst = hw::ins2();
    // Default pipeline: every HMult + HRescale pair fuses.
    const Graph g = tmult_graph(inst);
    EXPECT_EQ(g.count_kind(OpKind::kBootstrap), 1);
    EXPECT_EQ(g.count_kind(OpKind::kHMultRescale), inst.usable_levels());
    EXPECT_EQ(g.count_kind(OpKind::kHMult), 0);
    EXPECT_EQ(g.count_kind(OpKind::kHRescale), 0);
    ASSERT_EQ(g.outputs().size(), 1u);
    EXPECT_EQ(g.value(g.outputs()[0]).level, 0);

    // Pass-off keeps the hand-written primitive pairs.
    const Graph raw = tmult_graph(inst, passes::PassOptions::none());
    EXPECT_EQ(raw.count_kind(OpKind::kHMult), inst.usable_levels());
    EXPECT_EQ(raw.count_kind(OpKind::kHRescale), inst.usable_levels());
    ASSERT_EQ(raw.outputs().size(), 1u);
    EXPECT_EQ(raw.value(raw.outputs()[0]).level, 0);
}

TEST(GraphWorkloads, PolyEvalConsumesDegreeLevels)
{
    const GraphTraits t = small_traits();
    const Graph g = poly_eval_graph(t, 5, {1.0, 2.0, 3.0, 4.0});
    ASSERT_EQ(g.outputs().size(), 1u);
    EXPECT_EQ(g.value(g.outputs()[0]).level, 5 - 3);
    EXPECT_THROW(poly_eval_graph(t, 2, {1.0, 2.0, 3.0, 4.0}),
                 std::invalid_argument);
}

} // namespace
} // namespace bts::runtime
