/**
 * Functional end-to-end runs of the three application workloads
 * (HELR, ResNet-20-style inference, encrypted sorting) on the real
 * CKKS library via the runtime Executor, checked against the
 * slot-level plaintext reference interpreter (runtime/apps/reference.h).
 *
 * Shared instance: the bootstrap-capable BootTestEnv at L=20 (8 usable
 * levels after the 12-level bootstrap budget), so every app performs
 * genuine mid-circuit Bootstrap refreshes. Accuracy bounds asserted
 * here are the ones documented in docs/APPLICATIONS.md:
 *   - HELR: final-weight max delta and logistic-loss delta vs the
 *     plaintext reference of the same circuit;
 *   - ResNet: per-layer max |HE - plain| on the marked layer outputs;
 *   - sorting: round-to-grid exactness (the decrypted output rounds to
 *     the exactly sorted block) plus raw slot error vs the reference.
 *
 * Each suite also pins 1-lane vs 8-lane ciphertext bit-exactness (the
 * Executor's determinism contract) and the edge cases from the issue:
 * a 1-feature HELR batch and a 2-element sort block.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <vector>

#include "ckks/test_utils.h"
#include "common/random.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/reference.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/executor.h"
#include "runtime/server.h"

namespace bts::runtime::apps {
namespace {

using testing::BootTestEnv;
using testing::ct_equal;
using testing::TestEnv;

constexpr std::size_t kSlots = 64; // BootTestEnv's sparse slot count

/**
 * One cached L=20 bootstrap-capable environment for every app suite.
 * The rotation-key list is the union of the functional apps' graph
 * required_rotations(): HELR's log-tree {1..32 powers of two},
 * ResNet's conv taps {1..6} + pool tree, sorting's +-d partners.
 *
 * Input seeds below are pinned: the instance's EvalMod range is
 * marginal (see the BootTestEnv caveat in ckks/test_utils.h), and
 * since every test runs standalone under ctest, each one's encrypt
 * sequence starts from the same fresh env — a seed either always
 * works or always fails. Re-check standalone runs when changing a
 * seed or adding an encrypt call before an existing test.
 */
struct AppEnv
{
    AppEnv() : be(7321, {-2, -1, 1, 2, 3, 4, 5, 6, 8, 16, 32}, 20)
    {
        traits.max_level = be.env.ctx.max_level();
        traits.delta = be.env.ctx.delta();
        // One probe refresh pins the refreshed level for the metadata.
        const Ciphertext probe =
            be.env.encrypt(be.env.random_message(kSlots, 0.3, 7), 0);
        traits.bootstrap_out_level = be.boot->bootstrap(probe).level;
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &be.env.evaluator;
        r.encoder = &be.env.encoder;
        r.mult_key = &be.env.mult_key;
        r.rot_keys = &be.rot_keys;
        r.conj_key = &be.env.conj_key;
        r.bootstrapper = be.boot.get();
        return r;
    }

    /** Real-valued slot vector, uniform in [lo, hi]. */
    SlotVec
    real_vec(double lo, double hi, u64 seed) const
    {
        Xoshiro256 rng(seed);
        SlotVec v(kSlots);
        for (auto& x : v) {
            x = Complex(lo + (hi - lo) * rng.uniform_real(), 0.0);
        }
        return v;
    }

    BootTestEnv be;
    GraphTraits traits;
};

AppEnv&
aenv()
{
    static AppEnv* e = new AppEnv();
    return *e;
}

/** Encode/encrypt the reference input map into an Executor Binding
 *  (ciphertext inputs at their declared exact level, plaintexts at the
 *  graph's max level so every consumer is covered). */
Binding
make_binding(const Graph& g, const std::map<int, SlotVec>& inputs)
{
    auto& e = aenv();
    Binding b;
    for (const int id : g.input_ids()) {
        const SlotVec& vec = inputs.at(id);
        if (g.value(id).is_plain) {
            b.bind(Value{id}, e.be.env.encoder.encode(
                                  vec, e.traits.delta, e.traits.max_level));
        } else {
            b.bind(Value{id}, e.be.env.encrypt(vec, g.value(id).level));
        }
    }
    return b;
}

/** Run on the Executor and decrypt every marked output. */
std::vector<SlotVec>
run_decrypted(const Graph& g, const std::map<int, SlotVec>& inputs)
{
    auto& e = aenv();
    const Executor exec(e.resources());
    const auto outs = exec.run(g, make_binding(g, inputs));
    std::vector<SlotVec> dec;
    dec.reserve(outs.size());
    for (const auto& ct : outs) dec.push_back(e.be.env.decrypt(ct));
    return dec;
}

/** The Executor determinism contract, per app: a 1-lane serial run and
 *  an 8-lane scheduled run produce bit-identical output ciphertexts. */
void
expect_lane_bit_exact(const Graph& g, const std::map<int, SlotVec>& inputs)
{
    auto& e = aenv();
    const Executor serial(e.resources());
    ExecOptions opts;
    opts.lanes = 8;
    const Executor parallel(e.resources(), opts);
    // One shared binding (encryption is randomized, so encrypting
    // twice would make the runs diverge at the inputs already).
    const Binding base = make_binding(g, inputs);
    const auto a = serial.run_serial(g, Binding(base));
    const auto b = parallel.run(g, Binding(base));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(ct_equal(a[i], b[i])) << "output " << i;
    }
}

// ---------------------------------------------------------------- HELR

std::map<int, SlotVec>
helr_inputs(const HelrApp& app, u64 seed)
{
    auto& e = aenv();
    std::map<int, SlotVec> in;
    in[app.weights.id] = e.real_vec(-0.1, 0.1, seed);
    for (std::size_t c = 0; c < app.data.size(); ++c) {
        in[app.data[c].id] = e.real_vec(-0.5, 0.5, seed + 10 + c);
    }
    // Gradient plaintext: lr * batch-mean features, all positive so
    // the weights move measurably in a known direction.
    in[app.grad_data.id] = e.real_vec(0.005, 0.02, seed + 50);
    return in;
}

/** Sum over every data plaintext of <w, X_c> — the circuit's logit. */
double
helr_logit(const HelrApp& app, const std::map<int, SlotVec>& in,
           const SlotVec& w)
{
    double u = 0;
    for (const Value d : app.data) {
        const SlotVec& x = in.at(d.id);
        for (std::size_t j = 0; j < kSlots; ++j) {
            u += w[j].real() * x[j].real();
        }
    }
    return u;
}

TEST(HelrFunctional, TrainsCloseToPlainReference)
{
    auto& e = aenv();
    const HelrConfig cfg = HelrConfig::functional();
    const HelrApp app = build_helr(cfg, e.traits);
    const auto in = helr_inputs(app, 2001);

    const auto ref = reference_run(app.graph, in);
    const auto he = run_decrypted(app.graph, in);
    ASSERT_EQ(ref.size(), 1u);
    ASSERT_EQ(he.size(), 1u);

    // Training moved the weights (the run was not a no-op) ...
    EXPECT_GT(TestEnv::max_err(ref[0], in.at(app.weights.id)), 1e-3);
    // ... and the encrypted run tracks the plaintext reference through
    // 3 iterations including mid-training bootstrap refreshes.
    printf("[measured] helr weight max-delta = %.3e\n", TestEnv::max_err(he[0], ref[0]));
    EXPECT_LT(TestEnv::max_err(he[0], ref[0]), 5e-2);

    // Loss methodology (docs/APPLICATIONS.md): logistic loss of the
    // final weights on the batch, label +1, true sigmoid.
    const auto loss = [&](const SlotVec& w) {
        const double u = helr_logit(app, in, w);
        const double s = 1.0 / (1.0 + std::exp(-u));
        return -std::log(std::clamp(s, 1e-9, 1.0));
    };
    printf("[measured] helr loss delta = %.3e\n", std::abs(loss(he[0]) - loss(ref[0])));
    EXPECT_LT(std::abs(loss(he[0]) - loss(ref[0])), 1e-2);
}

TEST(HelrFunctional, SingleFeatureBatchMatchesReference)
{
    // Edge case: log_features == 0 degenerates the rotation log-tree
    // to a pure slot-wise logistic update (64 independent models);
    // 2 iterations force one mid-training refresh.
    auto& e = aenv();
    HelrConfig cfg = HelrConfig::functional();
    cfg.iterations = 2;
    cfg.data_cts = 1;
    cfg.log_features = 0;
    const HelrApp app = build_helr(cfg, e.traits);
    ASSERT_TRUE(app.graph.required_rotations().empty());
    ASSERT_TRUE(app.graph.uses_bootstrap());

    const auto in = helr_inputs(app, 2101);
    const auto ref = reference_run(app.graph, in);
    const auto he = run_decrypted(app.graph, in);
    EXPECT_LT(TestEnv::max_err(he[0], ref[0]), 3e-2);
}

TEST(HelrFunctional, LaneCountIsBitExact)
{
    auto& e = aenv();
    HelrConfig cfg = HelrConfig::functional();
    cfg.iterations = 2; // keeps one bootstrap in the schedule
    const HelrApp app = build_helr(cfg, e.traits);
    expect_lane_bit_exact(app.graph, helr_inputs(app, 2201));
}

// -------------------------------------------------------------- ResNet

std::map<int, SlotVec>
resnet_inputs(const ResnetApp& app, u64 seed)
{
    auto& e = aenv();
    std::map<int, SlotVec> in;
    // Activations in [0.2, 0.4]: the contractive regime the functional
    // config's dynamics (squarings + folded BN) keep inside [0, 0.5].
    in[app.act.id] = e.real_vec(0.2, 0.4, seed);
    u64 s = seed;
    for (const auto& layer : app.taps) {
        // Convex tap weights scaled by 0.5, so a conv burst contracts.
        std::vector<double> w;
        double total = 0;
        Xoshiro256 rng(++s);
        for (std::size_t t = 0; t < layer.size(); ++t) {
            w.push_back(0.1 + rng.uniform_real());
            total += w.back();
        }
        for (std::size_t t = 0; t < layer.size(); ++t) {
            in[layer[t].id] =
                SlotVec(kSlots, Complex(0.5 * w[t] / total, 0.0));
        }
    }
    // Final FC / pool normalization: 1 / 2^pool_rots per slot.
    in[app.pool_weights.id] = SlotVec(kSlots, Complex(0.125, 0.0));
    return in;
}

TEST(ResnetFunctional, LayersTrackPlainReference)
{
    auto& e = aenv();
    const ResnetApp app = build_resnet(ResnetConfig::functional(), e.traits);
    const auto in = resnet_inputs(app, 3001);

    const auto ref = reference_run(app.graph, in);
    const auto he = run_decrypted(app.graph, in);
    // layer_outputs then the final logits, in mark order.
    ASSERT_EQ(ref.size(), app.layer_outputs.size() + 1);
    ASSERT_EQ(he.size(), ref.size());

    for (std::size_t layer = 0; layer < app.layer_outputs.size(); ++layer) {
        printf("[measured] resnet layer %zu max-err = %.3e\n", layer, TestEnv::max_err(he[layer], ref[layer]));
        EXPECT_LT(TestEnv::max_err(he[layer], ref[layer]), 3e-2)
            << "layer " << layer;
    }
    printf("[measured] resnet logits max-err = %.3e\n", TestEnv::max_err(he.back(), ref.back()));
    EXPECT_LT(TestEnv::max_err(he.back(), ref.back()), 3e-2) << "logits";
    // Sanity on the plain side: the contractive dynamics held.
    for (const auto& v : ref.back()) {
        EXPECT_LT(std::abs(v), 1.0);
    }
}

TEST(ResnetFunctional, ServesThroughGraphServer)
{
    // The serving scenario from the issue: encrypted inference jobs
    // for several clients multiplexed onto GraphServer lanes, each
    // result checked against the plaintext reference.
    auto& e = aenv();
    const ResnetApp app = build_resnet(ResnetConfig::functional(), e.traits);

    ServerOptions opts;
    opts.lanes = 2;
    GraphServer server(e.resources(), opts);

    std::vector<std::map<int, SlotVec>> ins;
    std::vector<std::future<JobResult>> futures;
    for (u64 job = 0; job < 3; ++job) {
        ins.push_back(resnet_inputs(app, 3100 + job));
        JobRequest req;
        req.graph = &app.graph;
        req.client = "clinic-" + std::to_string(job);
        req.inputs = make_binding(app.graph, ins.back());
        futures.push_back(server.submit(std::move(req)));
    }
    for (u64 job = 0; job < futures.size(); ++job) {
        const JobResult r = futures[job].get();
        const auto ref = reference_run(app.graph, ins[job]);
        ASSERT_EQ(r.outputs.size(), ref.size());
        EXPECT_LT(TestEnv::max_err(e.be.env.decrypt(r.outputs.back()),
                                   ref.back()),
                  3e-2)
            << "job " << job;
    }
    server.drain();
    EXPECT_EQ(server.stats().failed, 0u);
}

TEST(ResnetFunctional, LaneCountIsBitExact)
{
    auto& e = aenv();
    const ResnetApp app = build_resnet(ResnetConfig::functional(), e.traits);
    expect_lane_bit_exact(app.graph, resnet_inputs(app, 3201));
}

// ------------------------------------------------------------- Sorting

constexpr double kGrid[4] = {-0.75, -0.25, 0.25, 0.75};

double
round_to_grid(double x)
{
    double best = kGrid[0];
    for (const double g : kGrid) {
        if (std::abs(x - g) < std::abs(x - best)) best = g;
    }
    return best;
}

std::map<int, SlotVec>
sort_inputs(const SortApp& app, int log_elements, u64 seed)
{
    std::map<int, SlotVec> in;
    Xoshiro256 rng(seed);
    SlotVec v(kSlots);
    for (auto& x : v) {
        x = Complex(kGrid[rng.next() & 3], 0.0);
    }
    in[app.values.id] = v;
    for (const auto& st : app.stages) {
        in[st.mask_lo.id] = sort_mask_lo(log_elements, st.distance, kSlots);
        in[st.mask_hi.id] = sort_mask_hi(log_elements, st.distance, kSlots);
        in[st.select.id] =
            sort_select_mask(log_elements, st.phase, st.distance, kSlots);
    }
    return in;
}

/** Every block of 2^k slots, rounded back to the value grid, must be
 *  the exact ascending sort of its input block. */
void
expect_sorted_blocks(const SlotVec& got, const SlotVec& input, int k)
{
    const std::size_t block = std::size_t{1} << k;
    for (std::size_t base = 0; base < kSlots; base += block) {
        std::vector<double> want;
        for (std::size_t i = 0; i < block; ++i) {
            want.push_back(input[base + i].real());
        }
        std::sort(want.begin(), want.end());
        for (std::size_t i = 0; i < block; ++i) {
            EXPECT_DOUBLE_EQ(round_to_grid(got[base + i].real()), want[i])
                << "block " << base / block << " slot " << i;
        }
    }
}

TEST(SortFunctional, SortsGridBlocksExactly)
{
    auto& e = aenv();
    const SortConfig cfg = SortConfig::functional();
    const SortApp app = build_sort(cfg, e.traits);
    const auto in = sort_inputs(app, cfg.log_elements, 4001);

    const auto ref = reference_run(app.graph, in);
    const auto he = run_decrypted(app.graph, in);
    ASSERT_EQ(he.size(), 1u);

    // The circuit itself sorts (reference interpreter, no CKKS noise),
    // and the encrypted run stays within rounding distance of it.
    expect_sorted_blocks(ref[0], in.at(app.values.id), cfg.log_elements);
    expect_sorted_blocks(he[0], in.at(app.values.id), cfg.log_elements);
    printf("[measured] sort slot max-err vs ref = %.3e\n", TestEnv::max_err(he[0], ref[0]));
    EXPECT_LT(TestEnv::max_err(he[0], ref[0]), 0.1);
}

TEST(SortFunctional, TwoElementBlocksSortExactly)
{
    // Edge case: log_elements == 1 is a single compare-exchange stage
    // over 32 independent pairs.
    auto& e = aenv();
    SortConfig cfg = SortConfig::functional();
    cfg.log_elements = 1;
    const SortApp app = build_sort(cfg, e.traits);
    ASSERT_EQ(app.stages.size(), 1u);
    const auto in = sort_inputs(app, cfg.log_elements, 4102);

    const auto he = run_decrypted(app.graph, in);
    expect_sorted_blocks(he[0], in.at(app.values.id), cfg.log_elements);
}

TEST(SortFunctional, LaneCountIsBitExact)
{
    auto& e = aenv();
    SortConfig cfg = SortConfig::functional();
    cfg.log_elements = 1; // one stage keeps the double run affordable
    const SortApp app = build_sort(cfg, e.traits);
    expect_lane_bit_exact(app.graph,
                          sort_inputs(app, cfg.log_elements, 4201));
}

} // namespace
} // namespace bts::runtime::apps
