#include <gtest/gtest.h>

#include <cmath>
#include <new>
#include <vector>

#include "ckks/test_utils.h"
#include "runtime/executor.h"
#include "runtime/graph_workloads.h"

namespace bts::runtime {
namespace {

using testing::TestEnv;

/** Test env + the rotation keys the scenario graphs need. */
struct RuntimeEnv
{
    RuntimeEnv() : env(bts::testing::small_params())
    {
        rot_keys = env.keygen.gen_rotation_keys(env.sk, {1, 2, 4, 8});
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &env.evaluator;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &env.conj_key;
        return r;
    }

    GraphTraits
    traits() const
    {
        GraphTraits t;
        t.max_level = env.ctx.max_level();
        t.bootstrap_out_level = env.ctx.max_level();
        t.delta = env.ctx.delta();
        return t;
    }

    TestEnv env;
    RotationKeys rot_keys;
};

RuntimeEnv&
renv()
{
    static RuntimeEnv* e = new RuntimeEnv();
    return *e;
}

using testing::ct_equal;

/** A graph with real inter-op parallelism: four independent
 *  mult/rotate/rescale chains joined by an add tree. */
Graph
fanout_graph(const GraphTraits& t)
{
    Graph g("fanout", t);
    const Value x = g.input(t.max_level, t.delta);
    std::vector<Value> chains;
    const int amounts[4] = {1, 2, 4, 8};
    for (int c = 0; c < 4; ++c) {
        Value v = g.hrot(x, amounts[c]);
        v = g.hmult(v, x);
        v = g.hrescale(v);
        v = g.cmult(v, 0.25 + 0.1 * c);
        v = g.hrescale(v);
        chains.push_back(v);
    }
    Value sum = g.hadd(chains[0], chains[1]);
    sum = g.hadd(sum, g.hadd(chains[2], chains[3]));
    g.mark_output(sum);
    return g;
}

TEST(Executor, DotProductMatchesPlainMath)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    const Graph g = dot_product_graph(t, t.max_level, 3);

    const std::size_t slots = e.env.ctx.n() / 2;
    const auto x = e.env.random_message(slots, 1.0, 11);
    const auto w = e.env.random_message(slots, 1.0, 12);

    Binding b;
    b.bind(Value{g.input_ids()[0]}, e.env.encrypt(x));
    b.bind(Value{g.input_ids()[1]},
           e.env.encoder.encode(w, t.delta, t.max_level));

    const Executor exec(e.resources());
    const auto outs = exec.run(g, std::move(b));
    ASSERT_EQ(outs.size(), 1u);
    const auto got = e.env.decrypt(outs[0]);

    // Slot j holds the 8-term cyclic window sum of x.*w.
    for (std::size_t j : {std::size_t{0}, slots / 2}) {
        Complex want(0, 0);
        for (std::size_t k = 0; k < 8; ++k) {
            const std::size_t i = (j + k) % slots;
            want += x[i] * w[i];
        }
        EXPECT_NEAR(std::abs(got[j] - want), 0.0, 1e-4);
    }
}

TEST(Executor, PolyEvalMatchesPlainMath)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    const std::vector<double> coeffs{0.3, -1.0, 0.5, 0.25};
    const Graph g = poly_eval_graph(t, t.max_level, coeffs);

    const std::size_t slots = e.env.ctx.n() / 2;
    const auto x = e.env.random_message(slots, 0.8, 13);
    Binding b;
    b.bind(Value{g.input_ids()[0]}, e.env.encrypt(x));

    const Executor exec(e.resources());
    const auto outs = exec.run(g, std::move(b));
    const auto got = e.env.decrypt(outs[0]);

    for (std::size_t j = 0; j < 4; ++j) {
        Complex want(0, 0);
        for (int d = static_cast<int>(coeffs.size()) - 1; d >= 0; --d) {
            want = want * x[j] + coeffs[d];
        }
        EXPECT_NEAR(std::abs(got[j] - want), 0.0, 1e-3);
    }
}

TEST(Executor, SchedulerBitExactAcrossLanes)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    const Graph g = fanout_graph(t);
    const auto x =
        e.env.random_message(e.env.ctx.n() / 2, 1.0, 21);

    // Encrypt ONCE: encryption is randomized (the encryptor's RNG
    // advances per call), so bit-exactness across schedules is only
    // defined for runs starting from the same ciphertext.
    const Ciphertext ct = e.env.encrypt(x);
    const auto bind = [&] {
        Binding b;
        b.bind(Value{g.input_ids()[0]}, ct);
        return b;
    };

    // The acceptance pin: scheduled execution at 1 and 8 lanes is
    // bit-identical to the serial reference run.
    const Executor ref(e.resources());
    const auto serial = ref.run_serial(g, bind());
    for (const int lanes : {1, 8}) {
        ExecOptions opts;
        opts.lanes = lanes;
        const Executor exec(e.resources(), opts);
        ExecStats stats;
        const auto outs = exec.run(g, bind(), &stats);
        ASSERT_EQ(outs.size(), serial.size()) << lanes << " lanes";
        EXPECT_TRUE(ct_equal(outs[0], serial[0])) << lanes << " lanes";
        EXPECT_EQ(stats.nodes, g.num_nodes());
        EXPECT_GE(stats.peak_in_flight, 1u);
        EXPECT_LE(stats.peak_in_flight, static_cast<std::size_t>(lanes));
    }

    // Decrypt-level check on top of the ciphertext-level one.
    const auto dec = e.env.decrypt(serial[0]);
    EXPECT_EQ(dec.size(), e.env.ctx.n() / 2);
}

TEST(Executor, PlanCacheSurvivesGraphAddressReuse)
{
    // Plans are keyed by Graph::uid(), not address: a new graph built
    // where a destroyed one lived must resolve its own evk handles. A
    // stale plan here would rotate with the amount-1 key while the node
    // says amount 2, decrypting to garbage.
    auto& e = renv();
    const GraphTraits t = e.traits();
    const Executor exec(e.resources());
    const std::size_t slots = e.env.ctx.n() / 2;
    const auto x = e.env.random_message(slots, 1.0, 61);

    alignas(Graph) unsigned char storage[sizeof(Graph)];
    const auto run_rot = [&](int amount) {
        Graph* g = new (storage) Graph("reuse", t);
        const Value in = g->input(t.max_level, t.delta);
        g->mark_output(g->hrot(in, amount));
        Binding b;
        b.bind(Value{g->input_ids()[0]}, e.env.encrypt(x));
        const auto outs = exec.run(*g, std::move(b));
        g->~Graph();
        return e.env.decrypt(outs[0]);
    };

    const auto rot1 = run_rot(1);
    const auto rot2 = run_rot(2); // same address as the amount-1 graph
    for (std::size_t j : {std::size_t{0}, slots - 3}) {
        EXPECT_NEAR(std::abs(rot1[j] - x[(j + 1) % slots]), 0.0, 1e-4);
        EXPECT_NEAR(std::abs(rot2[j] - x[(j + 2) % slots]), 0.0, 1e-4);
    }
}

TEST(Executor, InFlightWindowBoundsParallelism)
{
    auto& e = renv();
    const Graph g = fanout_graph(e.traits());
    Binding b;
    b.bind(Value{g.input_ids()[0]},
           e.env.encrypt(e.env.random_message(e.env.ctx.n() / 2, 1.0, 5)));

    ExecOptions opts;
    opts.lanes = 8;
    opts.max_in_flight = 2;
    const Executor exec(e.resources(), opts);
    ExecStats stats;
    exec.run(g, std::move(b), &stats);
    EXPECT_LE(stats.peak_in_flight, 2u);
}

TEST(Executor, PlaintextHandleCacheWarmsAcrossRuns)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    const Graph g = poly_eval_graph(t, t.max_level, {0.1, 0.2, 0.4});
    const auto bind = [&] {
        Binding b;
        b.bind(Value{g.input_ids()[0]},
               e.env.encrypt(
                   e.env.random_message(e.env.ctx.n() / 2, 0.5, 31)));
        return b;
    };

    const Executor exec(e.resources());
    ExecStats first, second;
    exec.run(g, bind(), &first);
    exec.run(g, bind(), &second);
    EXPECT_GT(first.plain_cache_misses, 0u);
    EXPECT_EQ(second.plain_cache_misses, first.plain_cache_misses);
    EXPECT_GT(second.plain_cache_hits, first.plain_cache_hits);
}

TEST(Executor, IntermediatesReleasedEagerly)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    // A long dependence chain: only the input and one intermediate can
    // ever be resident at once (plus the freshly produced value).
    Graph g("chain", t);
    Value v = g.input(t.max_level, t.delta);
    const Value x = v;
    for (int i = 0; i < 5; ++i) {
        v = g.cmult(v, 0.9);
        v = g.hrescale(v);
    }
    g.mark_output(v);
    (void)x;

    Binding b;
    b.bind(Value{g.input_ids()[0]},
           e.env.encrypt(e.env.random_message(e.env.ctx.n() / 2, 1.0, 7)));
    const Executor exec(e.resources());
    ExecStats stats;
    exec.run(g, std::move(b), &stats);
    // input + current + next <= 3 resident at any time.
    EXPECT_LE(stats.peak_live_values, 3u);
}

TEST(Executor, ResolveFailsLoudly)
{
    auto& e = renv();
    const GraphTraits t = e.traits();

    // Missing rotation key: fails at plan resolution, before any op.
    Graph g("bad-rot", t);
    g.mark_output(g.hrot(g.input(3, t.delta), 5));
    const Executor exec(e.resources());
    Binding b;
    b.bind(Value{g.input_ids()[0]},
           e.env.encrypt(e.env.random_message(4, 1.0, 1), 3));
    EXPECT_THROW(exec.run(g, std::move(b)), std::invalid_argument);

    // Missing mult key.
    Graph g2("no-mult-key", t);
    const Value a = g2.input(3, t.delta);
    g2.mark_output(g2.hmult(a, a));
    EvalResources bare;
    bare.eval = &e.env.evaluator;
    bare.encoder = &e.env.encoder;
    const Executor exec2(bare);
    Binding b2;
    b2.bind(Value{g2.input_ids()[0]},
            e.env.encrypt(e.env.random_message(4, 1.0, 2), 3));
    EXPECT_THROW(exec2.run(g2, std::move(b2)), std::invalid_argument);
}

TEST(Executor, BindingErrorsFailLoudly)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    Graph g("bind", t);
    const Value a = g.input(3, t.delta);
    g.mark_output(g.cadd(a, Complex(1.0, 0.0)));

    const Executor exec(e.resources());
    // Missing binding.
    EXPECT_THROW(exec.run(g, Binding{}), std::invalid_argument);
    // Level-mismatched binding.
    Binding wrong;
    wrong.bind(Value{g.input_ids()[0]},
               e.env.encrypt(e.env.random_message(4, 1.0, 3), 5));
    EXPECT_THROW(exec.run(g, std::move(wrong)), std::invalid_argument);
}

TEST(Executor, NodeFailurePropagatesFromWorkers)
{
    auto& e = renv();
    const GraphTraits t = e.traits();
    // Scales 1e-4 apart pass the graph's loose metadata check but trip
    // the evaluator's strict kScaleTolerance at execution time.
    Graph g("mismatch", t);
    const Value a = g.input(3, t.delta);
    const Value b = g.input(3, t.delta * (1.0 + 1e-4));
    g.mark_output(g.hadd(a, b));

    const auto bind = [&] {
        Binding bd;
        const auto z = e.env.random_message(4, 1.0, 4);
        bd.bind(Value{g.input_ids()[0]},
                e.env.encryptor.encrypt_symmetric(
                    e.env.encoder.encode(z, t.delta, 3), e.env.sk));
        bd.bind(Value{g.input_ids()[1]},
                e.env.encryptor.encrypt_symmetric(
                    e.env.encoder.encode(z, t.delta * (1.0 + 1e-4), 3),
                    e.env.sk));
        return bd;
    };
    for (const int lanes : {1, 4}) {
        ExecOptions opts;
        opts.lanes = lanes;
        const Executor exec(e.resources(), opts);
        EXPECT_THROW(exec.run(g, bind()), std::invalid_argument)
            << lanes << " lanes";
    }
}

TEST(Executor, BootstrapNodeRefreshes)
{
    // The shared bootstrap-capable small instance (test_utils.h).
    static testing::BootTestEnv* be = new testing::BootTestEnv(99);
    TestEnv& env = be->env;

    GraphTraits t;
    t.max_level = env.ctx.max_level();
    t.delta = env.ctx.delta();
    // One probe run pins the refreshed level for the graph metadata.
    const auto z = env.random_message(64, 0.3, 41);
    const Ciphertext probe = env.encrypt(z, 0);
    t.bootstrap_out_level = be->boot->bootstrap(probe).level;
    ASSERT_GE(t.bootstrap_out_level, 1);

    const Graph g = bootstrap_refresh_graph(t);
    EvalResources r;
    r.eval = &env.evaluator;
    r.encoder = &env.encoder;
    r.mult_key = &env.mult_key;
    r.rot_keys = &be->rot_keys;
    r.conj_key = &env.conj_key;
    r.bootstrapper = be->boot.get();

    const Executor exec(r);
    Binding b;
    b.bind(Value{g.input_ids()[0]}, env.encrypt(z, 0));
    const auto outs = exec.run(g, std::move(b));
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].level, t.bootstrap_out_level);
    EXPECT_LT(TestEnv::max_err(env.decrypt(outs[0]), z), 1e-2);
}

} // namespace
} // namespace bts::runtime
