#include <gtest/gtest.h>

#include "runtime/graph_workloads.h"
#include "runtime/lowering.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

namespace bts::runtime {
namespace {

using sim::HeOpKind;

class TmultPin : public ::testing::TestWithParam<int>
{
  protected:
    hw::CkksInstance
    inst() const
    {
        return hw::table4_instances()[GetParam()];
    }
};

TEST_P(TmultPin, LoweredTraceMatchesHandWrittenGenerator)
{
    // THE validation loop: the graph-API port of the tmult workload
    // must lower to the exact trace the hand-written generator emits —
    // same op-kind histogram, same bootstrap count, and (stronger)
    // op-for-op equality including levels, object ids and tags.
    const auto i = inst();
    const sim::Trace hand = workloads::tmult_microbench(i);
    const sim::Trace lowered = lower_to_trace(tmult_graph(i), i);

    EXPECT_EQ(sim::kind_histogram(lowered), sim::kind_histogram(hand));
    EXPECT_EQ(lowered.bootstrap_count, hand.bootstrap_count);
    ASSERT_EQ(lowered.ops.size(), hand.ops.size());
    for (std::size_t k = 0; k < hand.ops.size(); ++k) {
        EXPECT_EQ(lowered.ops[k], hand.ops[k]) << "op " << k;
    }
}

TEST_P(TmultPin, SimulatorResultsIdenticalOnRuntimeTrace)
{
    // BtsSimulator consuming the runtime-produced trace reproduces the
    // hand-written trace's results bit for bit.
    const auto i = inst();
    const sim::BtsConfig hw;
    const sim::BtsSimulator sim(hw, i);
    const auto r_hand = sim.run(workloads::tmult_microbench(i));
    const auto r_rt = sim.run(lower_to_trace(tmult_graph(i), i));
    EXPECT_DOUBLE_EQ(r_rt.total_s, r_hand.total_s);
    EXPECT_DOUBLE_EQ(r_rt.boot_s, r_hand.boot_s);
    EXPECT_DOUBLE_EQ(r_rt.energy_j, r_hand.energy_j);
    EXPECT_DOUBLE_EQ(r_rt.tmult_a_slot_ns, r_hand.tmult_a_slot_ns);
    EXPECT_EQ(r_rt.op_count, r_hand.op_count);
}

INSTANTIATE_TEST_SUITE_P(Table4, TmultPin, ::testing::Values(0, 1, 2));

TEST(Lowering, Deterministic)
{
    const auto i = hw::ins1();
    const Graph g = tmult_graph(i);
    const sim::Trace a = lower_to_trace(g, i);
    const sim::Trace b = lower_to_trace(g, i);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t k = 0; k < a.ops.size(); ++k) {
        EXPECT_EQ(a.ops[k], b.ops[k]);
    }
}

TEST(Lowering, BootstrapTaggingAndExpansion)
{
    const auto i = hw::ins2();
    const Graph g = bootstrap_refresh_graph(traits_for(i));
    const sim::Trace t = lower_to_trace(g, i);
    EXPECT_EQ(t.bootstrap_count, 1);
    EXPECT_GT(t.ops.size(), 50u); // composite expanded, not one op
    for (const auto& op : t.ops) {
        EXPECT_TRUE(op.in_bootstrap);
        EXPECT_GE(op.level, 1);
    }
}

TEST(Lowering, NonBootstrapOpsUntagged)
{
    const auto i = hw::ins1();
    GraphTraits t = traits_for(i);
    const Graph g = dot_product_graph(t, 5, 2);
    const sim::Trace trace = lower_to_trace(g, i);
    // The default-optimized dot fuses its PMult + HRescale into one
    // node; lowering expands every fused pair back to two primitives.
    const std::size_t fused = static_cast<std::size_t>(
        g.count_kind(OpKind::kPMultRescale) +
        g.count_kind(OpKind::kHMultRescale) +
        g.count_kind(OpKind::kCMultRescale) +
        g.count_kind(OpKind::kCMultAdd));
    EXPECT_EQ(fused, 1u);
    ASSERT_EQ(trace.ops.size(), g.num_nodes() + fused);
    for (const auto& op : trace.ops) {
        EXPECT_FALSE(op.in_bootstrap);
    }
    // PMult at 5, HRescale executes at 5, rotations/adds at 4.
    EXPECT_EQ(trace.ops[0].kind, HeOpKind::kPMult);
    EXPECT_EQ(trace.ops[0].level, 5);
    EXPECT_EQ(trace.ops[1].kind, HeOpKind::kHRescale);
    EXPECT_EQ(trace.ops[1].level, 5);
    EXPECT_EQ(trace.ops[2].kind, HeOpKind::kHRot);
    EXPECT_EQ(trace.ops[2].level, 4);
    EXPECT_EQ(trace.ops[2].rot_amount, 1);
}

TEST(Lowering, ObjectIdsFollowFirstUseOrder)
{
    const auto i = hw::ins1();
    GraphTraits t = traits_for(i);
    Graph g("ids", t);
    const Value a = g.input(5, t.delta);
    const Value b = g.input(5, t.delta);
    const Value s = g.hadd(a, b);
    g.mark_output(g.hadd(s, a));
    const sim::Trace trace = lower_to_trace(g, i);
    ASSERT_EQ(trace.ops.size(), 2u);
    EXPECT_EQ(trace.ops[0].inputs, (std::vector<int>{0, 1}));
    EXPECT_EQ(trace.ops[0].output, 2);
    EXPECT_EQ(trace.ops[1].inputs, (std::vector<int>{2, 0}));
    EXPECT_EQ(trace.ops[1].output, 3);
}

TEST(Lowering, LevelGeometryGuards)
{
    // A graph raising to a different L than the instance's must not
    // produce silently-wrong cost-model lookups.
    const auto i1 = hw::ins1();
    const auto i2 = hw::ins2();
    EXPECT_THROW(lower_to_trace(tmult_graph(i1), i2),
                 std::invalid_argument);

    // Value levels beyond the instance's chain are rejected too.
    GraphTraits t = traits_for(i2);
    const Graph deep = dot_product_graph(t, i2.max_level, 2);
    EXPECT_THROW(lower_to_trace(deep, i1), std::invalid_argument);
}

TEST(Lowering, BootstrapHasNoPrimitiveImage)
{
    EXPECT_THROW(to_sim_kind(OpKind::kBootstrap), std::invalid_argument);
    for (int k = 0; k < kNumOpKinds; ++k) {
        const OpKind kind = static_cast<OpKind>(k);
        if (kind == OpKind::kBootstrap) continue;
        if (op_is_composite(kind)) {
            // Pass-introduced composites expand in lower_to_trace and
            // must fail loudly if asked for a single sim image.
            EXPECT_THROW(to_sim_kind(kind), std::invalid_argument);
            continue;
        }
        if (kind == OpKind::kHSub) {
            // HSub has no sim twin of its own: it lowers to the
            // cost-identical kHAdd.
            EXPECT_EQ(to_sim_kind(kind), HeOpKind::kHAdd);
            continue;
        }
        EXPECT_STREQ(sim::kind_name(to_sim_kind(kind)), op_name(kind));
    }
}

} // namespace
} // namespace bts::runtime
