/**
 * Predicted-vs-measured closure tests (runtime/telemetry/profile.h):
 * a traced GraphServer run's kNode spans must reproduce, per op kind,
 * exactly the node counts of the executed graph and exactly the
 * per-kind predicted-cost slices of the ResourceSummary the server
 * cached at registration — the contract that makes bts_profile's
 * ratio table trustworthy. Also pins the Chrome export of a served
 * run (one named track per lane, job lifecycle instants present) and
 * the renderers.
 *
 * Environment: the small non-bootstrap TestEnv (N=2^10, L=6) — the
 * closure is about span/cost bookkeeping, not refresh math, and this
 * keeps the suite in the TSan job's time budget.
 */
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <string>
#include <vector>

#include "ckks/test_utils.h"
#include "runtime/graph_workloads.h"
#include "runtime/server.h"
#include "runtime/telemetry/chrome_trace.h"
#include "runtime/telemetry/profile.h"
#include "runtime/telemetry/trace.h"

// Closure cases need captured spans; skip when the hooks are
// compiled out (-DBTS_TELEMETRY=OFF).
#if defined(BTS_TELEMETRY)
#define BTS_SKIP_WITHOUT_TELEMETRY() ((void)0)
#else
#define BTS_SKIP_WITHOUT_TELEMETRY() \
    GTEST_SKIP() << "built without BTS_TELEMETRY"
#endif

namespace bts::runtime::telemetry {
namespace {

using bts::testing::TestEnv;

constexpr std::size_t kSlots = 1 << 9; // N/2 for the small env

struct ProfileTestEnv
{
    ProfileTestEnv() : env(bts::testing::small_params())
    {
        rot_keys = env.keygen.gen_rotation_keys(env.sk, {1, 2, 4});
        traits.max_level = env.ctx.max_level();
        traits.bootstrap_out_level = env.ctx.max_level();
        traits.delta = env.ctx.delta();
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &env.evaluator;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &env.conj_key;
        return r;
    }

    Binding
    make_binding(const Graph& g, u64 seed)
    {
        Binding b;
        for (const int id : g.input_ids()) {
            const auto vec = env.random_message(kSlots, 0.3, seed + id);
            if (g.value(id).is_plain) {
                b.bind(Value{id}, env.encoder.encode(vec, traits.delta,
                                                     traits.max_level));
            } else {
                b.bind(Value{id}, env.encrypt(vec, g.value(id).level));
            }
        }
        return b;
    }

    TestEnv env;
    RotationKeys rot_keys;
    GraphTraits traits;
};

ProfileTestEnv&
penv()
{
    static ProfileTestEnv* e = new ProfileTestEnv();
    return *e;
}

void
quiesce_and_reset()
{
    set_enabled(0);
    reset_trace();
}

/** Per-op-kind node histogram of @p g — what the span counts of a
 *  single traced run must equal. */
std::map<std::string, std::size_t>
kind_histogram(const Graph& g)
{
    std::map<std::string, std::size_t> h;
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        ++h[op_name(g.node(i).kind)];
    }
    return h;
}

TEST(ProfileClosure, TracedRunReproducesSummarySlices)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    auto& e = penv();
    const Graph g =
        dot_product_graph(e.traits, e.traits.max_level, 3);

    ServerOptions opts;
    opts.lanes = 1;
    GraphServer server(e.resources(), opts);
    const passes::OptimizeResult* reg = server.register_graph(g);
    const analysis::ResourceSummary* summary =
        server.resource_summary(reg->graph);
    ASSERT_NE(summary, nullptr)
        << "serving instance must price the dot-product graph";

    quiesce_and_reset();
    set_enabled(static_cast<u32>(Category::kNode));
    JobRequest req;
    req.graph = &reg->graph;
    req.inputs = e.make_binding(reg->graph, 501);
    server.submit(std::move(req)).get();
    server.drain();
    set_enabled(0);

    const ProfileReport report = profile_from_trace(collect_trace());
    EXPECT_EQ(report.dropped_events, 0u);

    // Span counts per kind == the executed graph's node histogram.
    const auto hist = kind_histogram(reg->graph);
    ASSERT_EQ(report.ops.size(), hist.size());
    std::size_t spans = 0;
    for (const OpKindProfile& row : report.ops) {
        ASSERT_TRUE(hist.count(row.op)) << row.op;
        EXPECT_EQ(row.count, hist.at(row.op)) << row.op;
        EXPECT_GT(row.measured_s, 0.0) << row.op;
        spans += row.count;
    }
    EXPECT_EQ(spans, reg->graph.num_nodes());

    // The predicted column — summed from the cost tags the Executor
    // stamped on each span — must reproduce the static per-kind slices
    // of the cached ResourceSummary to float-rounding tolerance.
    const std::map<std::string, double> want =
        predicted_by_kind(reg->graph, *summary);
    double want_total = 0;
    for (const OpKindProfile& row : report.ops) {
        ASSERT_TRUE(want.count(row.op)) << row.op;
        EXPECT_NEAR(row.predicted_s, want.at(row.op),
                    1e-12 + 1e-9 * want.at(row.op))
            << row.op;
        want_total += want.at(row.op);
    }
    EXPECT_NEAR(report.predicted_total_s, want_total,
                1e-12 + 1e-9 * want_total);
    EXPECT_GT(report.measured_total_s, 0.0);
}

TEST(ProfileClosure, UnregisteredGraphTracesWithZeroPrediction)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    // A graph run through a bare Executor (no register_graph, so no
    // installed costs) still traces; the predicted column is zero.
    auto& e = penv();
    const Graph g = poly_eval_graph(e.traits, e.traits.max_level,
                                    {1.0, 0.5, 0.25});
    const Executor exec(e.resources());

    quiesce_and_reset();
    set_enabled(static_cast<u32>(Category::kNode));
    exec.run(g, e.make_binding(g, 733));
    set_enabled(0);

    const ProfileReport report = profile_from_trace(collect_trace());
    std::size_t spans = 0;
    for (const OpKindProfile& row : report.ops) {
        EXPECT_DOUBLE_EQ(row.predicted_s, 0.0) << row.op;
        spans += row.count;
    }
    EXPECT_EQ(spans, g.num_nodes());
    EXPECT_DOUBLE_EQ(report.predicted_total_s, 0.0);
}

TEST(ProfileClosure, ServedTraceExportsPerLaneTracks)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    auto& e = penv();
    const Graph g =
        dot_product_graph(e.traits, e.traits.max_level, 3);

    ServerOptions opts;
    opts.lanes = 2;
    GraphServer server(e.resources(), opts);
    const passes::OptimizeResult* reg = server.register_graph(g);

    quiesce_and_reset();
    set_enabled(static_cast<u32>(Category::kNode) |
                static_cast<u32>(Category::kServer));
    std::vector<std::future<JobResult>> futures;
    for (int j = 0; j < 6; ++j) {
        JobRequest req;
        req.graph = &reg->graph;
        req.inputs = e.make_binding(reg->graph, 900 + u64(j));
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futures) f.get();
    server.drain();
    set_enabled(0);

    const Trace trace = collect_trace();
    const std::string json = to_chrome_trace_json(trace);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("lane 0"), std::string::npos);
    EXPECT_NE(json.find("lane 1"), std::string::npos);
    for (const char* lifecycle :
         {"job.submitted", "job.admitted", "job.scheduled", "job.done"}) {
        EXPECT_NE(json.find(lifecycle), std::string::npos) << lifecycle;
    }
    EXPECT_NE(json.find("server.queue_depth"), std::string::npos);

    // Node spans landed on named lane tracks (not the submitter).
    std::size_t lane_node_spans = 0;
    for (const ThreadTrace& th : trace.threads) {
        if (th.name.rfind("lane ", 0) != 0) continue;
        for (const TraceEvent& ev : th.events) {
            if (ev.kind == EventKind::kSpan &&
                ev.cat == Category::kNode) {
                ++lane_node_spans;
            }
        }
    }
    EXPECT_EQ(lane_node_spans, 6 * reg->graph.num_nodes());
}

TEST(ProfileRender, TextAndJsonCarryTheTable)
{
    ProfileReport r;
    r.ops.push_back({"HMult", 3, 0.5, 0.25});
    r.ops.push_back({"HAdd", 2, 0.1, 0.05});
    r.measured_total_s = 0.6;
    r.predicted_total_s = 0.3;
    r.dropped_events = 2;

    const std::string text = render_profile_text(r);
    EXPECT_NE(text.find("HMult"), std::string::npos);
    EXPECT_NE(text.find("TOTAL"), std::string::npos);
    EXPECT_NE(text.find("dropped"), std::string::npos);

    const std::string json = render_profile_json(r);
    EXPECT_NE(json.find("\"ops\""), std::string::npos);
    EXPECT_NE(json.find("\"HMult\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":2"), std::string::npos);
}

} // namespace
} // namespace bts::runtime::telemetry
