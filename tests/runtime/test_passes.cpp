// Pass-pipeline unit tests: pure graph-level pins (no crypto) for the
// waterline rescale placement, dead-value elimination, rotation CSE,
// fusion and lazy-residue passes — legality rules, stats accounting,
// value-map correctness, idempotence and the DOT/logging satellites.
// Bit-exactness of optimized execution is pinned separately in
// test_passes_differential.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"
#include "runtime/passes/dot.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime {
namespace {

GraphTraits
small_traits()
{
    GraphTraits t;
    t.max_level = 10;
    t.bootstrap_out_level = 6;
    t.delta = std::ldexp(1.0, 40);
    return t;
}

/** Sum of Node::lazy marks. */
std::size_t
count_lazy(const Graph& g)
{
    std::size_t n = 0;
    for (const Node& node : g.nodes()) n += node.lazy;
    return n;
}

TEST(PassManager, NoneIsAStructuralCopyWithFreshUid)
{
    const GraphTraits t = small_traits();
    const Graph g = dot_product_graph(t, 5, 3, passes::PassOptions::none());
    const passes::OptimizeResult r =
        passes::PassManager(passes::PassOptions::none()).optimize(g);
    EXPECT_EQ(r.graph.debug_string(), g.debug_string());
    EXPECT_NE(r.graph.uid(), g.uid()); // independent plan-cache entry
    // Identity value map on a pure copy.
    for (std::size_t id = 0; id < g.num_values(); ++id) {
        EXPECT_EQ(r.value_map[id], static_cast<int>(id));
    }
    EXPECT_EQ(r.stats.rescales_inserted, 0u);
    EXPECT_EQ(r.stats.ops_fused, 0u);
}

TEST(PassRescale, InsertsWaterlineRescaleBeforeNeedyConsumer)
{
    const GraphTraits t = small_traits();
    Graph g("raw", t);
    const Value x = g.input(6, t.delta);
    const Value m = g.cmult(x, 2.0);             // delta^2
    g.mark_output(g.cadd(m, Complex(1.0, 0.0))); // needs reduced scale

    const passes::OptimizeResult r =
        passes::PassManager(passes::PassOptions::rescale_only())
            .optimize(g);
    EXPECT_EQ(r.stats.rescales_inserted, 1u);

    // The optimized form is exactly the graph a careful author writes.
    Graph hand("raw", t);
    const Value hx = hand.input(6, t.delta);
    hand.mark_output(
        hand.cadd(hand.hrescale(hand.cmult(hx, 2.0)), Complex(1.0, 0.0)));
    EXPECT_EQ(r.graph.debug_string(), hand.debug_string());
}

TEST(PassRescale, SharedAcrossAllNeedyConsumers)
{
    const GraphTraits t = small_traits();
    Graph g("shared", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    const Value p = g.hmult(x, y); // delta^2, two needy consumers
    g.mark_output(g.cadd(p, Complex(1.0, 0.0)));
    g.mark_output(g.cmult(p, 0.5));

    const passes::OptimizeResult r =
        passes::PassManager(passes::PassOptions::rescale_only())
            .optimize(g);
    // ONE rescale serves both consumers.
    EXPECT_EQ(r.stats.rescales_inserted, 1u);
    EXPECT_EQ(r.graph.count_kind(OpKind::kHRescale), 1);
}

TEST(PassRescale, InsertOnlyNoOpOnConformantGraphs)
{
    // Hand-placed rescales are authoritative: builder graphs that
    // already satisfy the waterline replay byte-identically.
    const GraphTraits t = small_traits();
    const Graph dot =
        dot_product_graph(t, 5, 3, passes::PassOptions::none());
    const passes::OptimizeResult r1 =
        passes::PassManager(passes::PassOptions::rescale_only())
            .optimize(dot);
    EXPECT_EQ(r1.stats.rescales_inserted, 0u);
    EXPECT_EQ(r1.graph.debug_string(), dot.debug_string());

    const Graph tm = tmult_graph(hw::ins1(), passes::PassOptions::none());
    const passes::OptimizeResult r2 =
        passes::PassManager(passes::PassOptions::rescale_only())
            .optimize(tm);
    EXPECT_EQ(r2.stats.rescales_inserted, 0u);
    EXPECT_EQ(r2.graph.debug_string(), tm.debug_string());
}

TEST(PassRescale, MakesRawPolyExecutableShape)
{
    // The raw Horner chain carries no rescales at all; the waterline
    // pass inserts exactly one per constant add (degree many).
    const GraphTraits t = small_traits();
    const std::vector<double> coeffs{0.3, -1.0, 0.5, 0.25};
    const Graph raw =
        poly_eval_graph(t, 6, coeffs, passes::PassOptions::none());
    EXPECT_EQ(raw.count_kind(OpKind::kHRescale), 0);

    const passes::OptimizeResult r =
        passes::PassManager(passes::PassOptions::rescale_only())
            .optimize(raw);
    EXPECT_EQ(r.stats.rescales_inserted, 3u);
    EXPECT_EQ(r.graph.count_kind(OpKind::kHRescale), 3);
    ASSERT_EQ(r.graph.outputs().size(), 1u);
    EXPECT_EQ(r.graph.value(r.graph.outputs()[0]).level, 6 - 3);
    EXPECT_DOUBLE_EQ(r.graph.value(r.graph.outputs()[0]).scale, t.delta);
}

TEST(PassDve, DropsNodesThatCannotReachAnOutput)
{
    const GraphTraits t = small_traits();
    Graph g("dead", t);
    const Value x = g.input(6, t.delta);
    g.mark_output(g.cadd(x, Complex(0.5, 0.0)));
    const Value dead = g.hmult(x, x);
    const Value dead2 = g.hrescale(dead);
    (void)dead2;

    passes::PassOptions o = passes::PassOptions::none();
    o.eliminate_dead = true;
    const passes::OptimizeResult r = passes::PassManager(o).optimize(g);
    EXPECT_EQ(r.stats.nodes_eliminated, 2u);
    EXPECT_EQ(r.graph.num_nodes(), 1u);
    // Eliminated values are unmapped; declared inputs are always kept
    // (the Binding contract requires every declared input bound).
    EXPECT_EQ(r.value_map[dead.id], -1);
    EXPECT_FALSE(r.remap(dead).valid());
    EXPECT_EQ(r.graph.input_ids().size(), g.input_ids().size());
}

TEST(PassRotationCse, GroupsSharedInputAndDedupesAmounts)
{
    const GraphTraits t = small_traits();
    Graph g("rots", t);
    const Value x = g.input(6, t.delta);
    const Value r1 = g.hrot(x, 1);
    const Value r2 = g.hrot(x, 2);
    const Value r3 = g.hrot(x, 1); // duplicate amount -> CSE'd
    const Value z = g.cmult(x, 0.5);
    const Value rz = g.hrot(z, 4); // lone rotation: stays a kHRot
    g.mark_output(r2);
    g.mark_output(r3);
    g.mark_output(rz);
    (void)r1;

    passes::PassOptions o = passes::PassOptions::none();
    o.group_rotations = true;
    const passes::OptimizeResult r = passes::PassManager(o).optimize(g);
    EXPECT_EQ(r.stats.rotations_grouped, 3u);
    EXPECT_EQ(r.stats.nodes_eliminated, 1u); // the duplicate
    EXPECT_EQ(r.graph.count_kind(OpKind::kHRotHoisted), 1);
    EXPECT_EQ(r.graph.count_kind(OpKind::kHRot), 1);
    EXPECT_EQ(r.graph.num_nodes(), 3u);

    // Distinct amounts in first-appearance order; duplicates share one
    // output value.
    for (const Node& n : r.graph.nodes()) {
        if (n.kind != OpKind::kHRotHoisted) continue;
        EXPECT_EQ(n.amounts, (std::vector<int>{1, 2}));
        ASSERT_EQ(n.outputs.size(), 2u);
    }
    EXPECT_EQ(r.value_map[r1.id], r.value_map[r3.id]);
    EXPECT_NE(r.value_map[r1.id], r.value_map[r2.id]);
    // Key requirements are preserved.
    EXPECT_EQ(r.graph.required_rotations(), (std::vector<int>{1, 2, 4}));
}

TEST(PassFusion, FusesAllFourPairKinds)
{
    const GraphTraits t = small_traits();
    Graph g("fuse", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    const Value pt = g.plain_input(6, t.delta);
    g.mark_output(g.hrescale(g.hmult(x, y)));
    g.mark_output(g.hrescale(g.pmult(x, pt)));
    g.mark_output(g.hrescale(g.cmult(x, 0.25)));
    g.mark_output(g.cadd(g.cmult(y, 2.0), Complex(5.0, 0.0)));

    passes::PassOptions o = passes::PassOptions::none();
    o.fuse = true;
    const passes::OptimizeResult r = passes::PassManager(o).optimize(g);
    EXPECT_EQ(r.stats.ops_fused, 4u);
    EXPECT_EQ(r.graph.num_nodes(), 4u);
    EXPECT_EQ(r.graph.count_kind(OpKind::kHMultRescale), 1);
    EXPECT_EQ(r.graph.count_kind(OpKind::kPMultRescale), 1);
    EXPECT_EQ(r.graph.count_kind(OpKind::kCMultRescale), 1);
    EXPECT_EQ(r.graph.count_kind(OpKind::kCMultAdd), 1);
    for (const Node& n : r.graph.nodes()) {
        if (n.kind != OpKind::kCMultAdd) continue;
        EXPECT_EQ(n.constant, Complex(2.0, 0.0));
        EXPECT_EQ(n.constant2, Complex(5.0, 0.0));
    }
}

TEST(PassFusion, RefusesMultiUseAndMarkedIntermediates)
{
    const GraphTraits t = small_traits();
    Graph g("nofuse", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    // Intermediate with a second consumer: must stay unfused.
    const Value p = g.hmult(x, y);
    g.mark_output(g.hrescale(p));
    g.mark_output(g.cmult(p, 0.5));
    // Intermediate that is itself a graph output: must stay unfused.
    const Value q = g.hmult(y, y);
    g.mark_output(q);
    g.mark_output(g.hrescale(q));

    passes::PassOptions o = passes::PassOptions::none();
    o.fuse = true;
    const passes::OptimizeResult r = passes::PassManager(o).optimize(g);
    EXPECT_EQ(r.stats.ops_fused, 0u);
    EXPECT_EQ(r.graph.debug_string(), g.debug_string());
}

TEST(PassFusion, ValueMapDropsTheFusedIntermediate)
{
    const GraphTraits t = small_traits();
    Graph g("map", t);
    const Value x = g.input(6, t.delta);
    const Value p = g.hmult(x, x);
    const Value res = g.hrescale(p);
    g.mark_output(res);

    const passes::OptimizeResult r = passes::PassManager().optimize(g);
    EXPECT_EQ(r.value_map[p.id], -1); // no longer exists
    ASSERT_TRUE(r.remap(res).valid());
    EXPECT_EQ(r.graph.value(r.remap(res).id).level, 5);
    EXPECT_FALSE(r.remap(Value{}).valid()); // invalid stays invalid
}

TEST(PassLazy, MarksAddsWhoseConsumersAllTolerate)
{
    const GraphTraits t = small_traits();
    Graph g("lazy", t);
    const Value a = g.input(6, t.delta);
    const Value b = g.input(6, t.delta);
    const Value s = g.hadd(a, b); // consumers: hmult -> lazy
    g.mark_output(g.hrescale(g.hmult(s, s)));
    const Value u = g.hsub(a, b); // consumer: hrot -> lazy
    g.mark_output(g.hrot(u, 2));
    const Value v = g.hadd(a, b); // consumer: cadd -> canonical
    g.mark_output(g.cadd(v, Complex(1.0, 0.0)));
    const Value w = g.hadd(a, b); // graph output -> canonical
    g.mark_output(w);

    passes::PassOptions o = passes::PassOptions::none();
    o.lazy = true;
    const passes::OptimizeResult r = passes::PassManager(o).optimize(g);
    EXPECT_EQ(r.stats.lazy_nodes, 2u);
    EXPECT_EQ(count_lazy(r.graph), 2u);
    // With every other pass off the node indexing is preserved.
    EXPECT_TRUE(
        r.graph.node(static_cast<std::size_t>(g.value(s.id).producer))
            .lazy);
    EXPECT_TRUE(
        r.graph.node(static_cast<std::size_t>(g.value(u.id).producer))
            .lazy);
    EXPECT_FALSE(
        r.graph.node(static_cast<std::size_t>(g.value(v.id).producer))
            .lazy);
    EXPECT_FALSE(
        r.graph.node(static_cast<std::size_t>(g.value(w.id).producer))
            .lazy);
}

TEST(PassManager, PipelineIsIdempotent)
{
    const GraphTraits t = small_traits();
    const Graph graphs[] = {
        dot_product_graph(t, 5, 3),
        poly_eval_graph(t, 6, {0.3, -1.0, 0.5, 0.25}),
        apps::build_sort(apps::SortConfig::functional(), t).graph,
    };
    for (const Graph& once : graphs) {
        const passes::OptimizeResult again =
            passes::PassManager().optimize(once);
        EXPECT_EQ(again.graph.debug_string(), once.debug_string())
            << once.name();
        EXPECT_EQ(again.stats.rescales_inserted, 0u) << once.name();
        EXPECT_EQ(again.stats.nodes_eliminated, 0u) << once.name();
        EXPECT_EQ(again.stats.rotations_grouped, 0u) << once.name();
        EXPECT_EQ(again.stats.ops_fused, 0u) << once.name();
        EXPECT_EQ(again.stats.lazy_nodes, 0u) << once.name();
    }
}

TEST(PassManager, SortGraphExercisesEveryPass)
{
    // The bitonic-sort app is the pipeline's richest client: paired
    // +/-d rotations group, mult+rescale chains fuse, and the
    // sum/difference adds feed only multiplicative consumers.
    const GraphTraits t = small_traits();
    apps::SortConfig cfg = apps::SortConfig::functional();
    cfg.optimize = false;
    const apps::SortApp raw = apps::build_sort(cfg, t);

    std::ostringstream log;
    passes::PassOptions o; // default: everything on
    o.log = &log;
    const passes::OptimizeResult r =
        passes::PassManager(o).optimize(raw.graph);
    EXPECT_GT(r.stats.rotations_grouped, 0u);
    EXPECT_GT(r.stats.ops_fused, 0u);
    EXPECT_GT(r.stats.lazy_nodes, 0u);
    EXPECT_GT(r.graph.count_kind(OpKind::kHRotHoisted), 0);
    EXPECT_LT(r.graph.num_nodes(), raw.graph.num_nodes());
    // Per-pass stats logging (the observability satellite).
    const std::string text = log.str();
    EXPECT_NE(text.find("[passes] sort_app"), std::string::npos);
    EXPECT_NE(text.find("rotation-cse"), std::string::npos);
    EXPECT_NE(text.find("ops_fused="), std::string::npos);
}

TEST(Graph, ValidationErrorsNameNodeIndexAndKind)
{
    // The debuggability satellite: a builder error deep inside an
    // application graph points at the offending node, not just the
    // violated rule.
    const GraphTraits t = small_traits();
    Graph g("diag", t);
    const Value a = g.input(0, t.delta);
    g.mark_output(g.cadd(a, Complex(1.0, 0.0))); // node 0
    try {
        g.hrescale(a); // node 1: operand already at level 0
        FAIL() << "hrescale at level 0 must throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("node 1 (hrescale)"),
                  std::string::npos)
            << e.what();
    }
    try {
        const Value pt = g.plain_input(0, t.delta);
        const Value ct = g.input(5, t.delta);
        g.pmult(ct, pt);
        FAIL() << "pmult with a too-low plaintext must throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("node 1 (pmult)"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Dot, RendersStructureLazinessAndComposites)
{
    const GraphTraits t = small_traits();
    Graph g("viz", t);
    const Value x = g.input(6, t.delta);
    const Value y = g.input(6, t.delta);
    const Value pt = g.plain_input(6, t.delta);
    const Value s = g.hadd(x, y);
    g.mark_output(g.hrescale(g.hmult(s, s)));
    g.mark_output(g.hrot(g.pmult(x, pt), 3));

    const passes::OptimizeResult r = passes::PassManager().optimize(g);
    const std::string dot = passes::to_dot(r.graph);
    EXPECT_EQ(dot.rfind("digraph", 0), 0u);
    EXPECT_NE(dot.find("HMultRescale"), std::string::npos);
    EXPECT_NE(dot.find("lightblue"), std::string::npos); // composite fill
    EXPECT_NE(dot.find("dashed"), std::string::npos);    // lazy edge + pt
    EXPECT_NE(dot.find("peripheries=2"), std::string::npos); // outputs
    EXPECT_NE(dot.find("lazy"), std::string::npos);
    // The digraph closes.
    EXPECT_NE(dot.find("\n}"), std::string::npos);
}

} // namespace
} // namespace bts::runtime
