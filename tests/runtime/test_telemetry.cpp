/**
 * Tracing core + metrics registry tests (runtime/telemetry/):
 * multi-thread capture, the drop-new overflow contract (a full buffer
 * counts, never blocks or crashes), runtime category masking, the
 * metrics registry's instruments and both render formats, the Chrome
 * trace exporter's event shapes, and the disabled-path overhead bound
 * — the tracing hooks compiled in but runtime-disabled must stay
 * within noise of the uninstrumented kernel.
 *
 * Telemetry state is process-global; every test starts by disabling
 * emission and resetting the buffers so captures cannot leak across
 * cases (this suite runs one test binary, cases in order).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/random.h"
#include "math/ntt.h"
#include "math/prime_gen.h"
#include "rns/rns_poly.h"
#include "runtime/telemetry/chrome_trace.h"
#include "runtime/telemetry/metrics.h"
#include "runtime/telemetry/trace.h"

// Capture-dependent cases skip when the hooks are compiled out
// (-DBTS_TELEMETRY=OFF): nothing emits by design, so there is nothing
// to assert on. The metrics/render/overhead cases run either way.
#if defined(BTS_TELEMETRY)
#define BTS_SKIP_WITHOUT_TELEMETRY() ((void)0)
#else
#define BTS_SKIP_WITHOUT_TELEMETRY() \
    GTEST_SKIP() << "built without BTS_TELEMETRY"
#endif

namespace bts::runtime::telemetry {
namespace {

void
quiesce_and_reset()
{
    set_enabled(0);
    set_thread_buffer_capacity(65536);
    reset_trace();
}

u32
mask(Category c)
{
    return static_cast<u32>(c);
}

TEST(Trace, DisabledEmitsNothing)
{
    quiesce_and_reset();
    BTS_TRACE_INSTANT(kKernel, "should.not.appear", 1);
    {
        BTS_TRACE_SPAN(kNode, "should.not.appear.either");
    }
    EXPECT_EQ(collect_trace().total_events(), 0u);
}

TEST(Trace, CapturesSpansAcrossThreads)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    quiesce_and_reset();
    set_enabled(mask(Category::kKernel));
    constexpr int kThreads = 3;
    constexpr int kSpansPer = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            set_thread_name("worker " + std::to_string(t));
            for (int i = 0; i < kSpansPer; ++i) {
                BTS_TRACE_SPAN_VAR(span, kKernel, "unit.work");
                span.set_level(t);
                span.set_arg(i);
            }
        });
    }
    for (auto& t : threads) t.join();
    set_enabled(0);

    const Trace trace = collect_trace();
    EXPECT_EQ(trace.total_events(),
              static_cast<std::size_t>(kThreads * kSpansPer));
    EXPECT_EQ(trace.total_dropped(), 0u);
    int named = 0;
    for (const ThreadTrace& th : trace.threads) {
        if (th.events.empty()) continue;
        ++named;
        EXPECT_EQ(th.events.size(), static_cast<std::size_t>(kSpansPer));
        EXPECT_TRUE(th.name.rfind("worker ", 0) == 0) << th.name;
        for (const TraceEvent& ev : th.events) {
            EXPECT_STREQ(ev.name, "unit.work");
            EXPECT_EQ(ev.kind, EventKind::kSpan);
            EXPECT_LE(ev.t0_ns, ev.t1_ns);
            EXPECT_NE(ev.t0_ns, 0u);
        }
        // Emission order is preserved within a thread.
        for (std::size_t i = 0; i + 1 < th.events.size(); ++i) {
            EXPECT_LE(th.events[i].arg, th.events[i + 1].arg);
        }
    }
    EXPECT_EQ(named, kThreads);
}

TEST(Trace, OverflowDropsNewEventsAndCounts)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    quiesce_and_reset();
    set_thread_buffer_capacity(16);
    set_enabled(mask(Category::kServer));
    // A fresh thread gets the reduced capacity; emit far past it.
    std::thread t([] {
        set_thread_name("overflow");
        for (int i = 0; i < 1000; ++i) {
            BTS_TRACE_INSTANT(kServer, "tick", i);
        }
    });
    t.join();
    set_enabled(0);

    const Trace trace = collect_trace();
    const ThreadTrace* th = nullptr;
    for (const ThreadTrace& cand : trace.threads) {
        if (cand.name == "overflow") th = &cand;
    }
    ASSERT_NE(th, nullptr);
    EXPECT_EQ(th->events.size(), 16u);
    EXPECT_EQ(th->dropped, 984u);
    // The survivors are the FIRST 16 (drop-new, not ring-wrap).
    for (std::size_t i = 0; i < th->events.size(); ++i) {
        EXPECT_EQ(th->events[i].arg, static_cast<i64>(i));
    }
    // reset_trace applies the pending default capacity again.
    quiesce_and_reset();
}

TEST(Trace, CategoryMaskFilters)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    quiesce_and_reset();
    set_enabled(mask(Category::kServer));
    BTS_TRACE_INSTANT(kKernel, "masked.out", 0);
    BTS_TRACE_INSTANT(kServer, "kept", 7);
    set_enabled(0);

    const Trace trace = collect_trace();
    ASSERT_EQ(trace.total_events(), 1u);
    for (const ThreadTrace& th : trace.threads) {
        for (const TraceEvent& ev : th.events) {
            EXPECT_STREQ(ev.name, "kept");
            EXPECT_EQ(ev.cat, Category::kServer);
            EXPECT_EQ(ev.arg, 7);
        }
    }
    EXPECT_FALSE(enabled(Category::kServer));
    EXPECT_FALSE(enabled(Category::kKernel));
}

TEST(Trace, SpanTagsLandInTheEvent)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    quiesce_and_reset();
    set_enabled(mask(Category::kNode));
    {
        BTS_TRACE_SPAN_VAR(span, kNode, "HMult");
        EXPECT_TRUE(span.active());
        span.set_level(11);
        span.set_arg(42);
        span.set_cost(1.5e-4);
    }
    set_enabled(0);

    const Trace trace = collect_trace();
    ASSERT_EQ(trace.total_events(), 1u);
    for (const ThreadTrace& th : trace.threads) {
        for (const TraceEvent& ev : th.events) {
            EXPECT_EQ(ev.level, 11);
            EXPECT_EQ(ev.arg, 42);
            EXPECT_DOUBLE_EQ(ev.cost_s, 1.5e-4);
        }
    }
}

TEST(ChromeTrace, ExportsTracksSpansAndCounters)
{
    BTS_SKIP_WITHOUT_TELEMETRY();
    quiesce_and_reset();
    set_enabled(mask(Category::kServer) | mask(Category::kKernel));
    set_thread_name("lane 9");
    {
        BTS_TRACE_SPAN(kKernel, "ntt.fwd");
    }
    BTS_TRACE_INSTANT(kServer, "job.submitted", 1);
    BTS_TRACE_COUNTER(kServer, "server.queue_depth", 3);
    set_enabled(0);

    const std::string json = to_chrome_trace_json(collect_trace());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("lane 9"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(Metrics, InstrumentsAccumulate)
{
    MetricsRegistry& reg = MetricsRegistry::instance();
    Counter& c = reg.counter("test_counter_total", "a counter");
    c.reset();
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    // Find-or-create returns the same instrument.
    EXPECT_EQ(&c, &reg.counter("test_counter_total"));

    Gauge& g = reg.gauge("test_gauge");
    g.reset();
    g.set(2.5);
    g.set_max(1.0); // lower: ignored
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.set_max(9.0);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);

    Histogram& h = reg.histogram("test_hist", {0.1, 1.0});
    h.reset();
    h.observe(0.05);
    h.observe(0.5);
    h.observe(50.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 50.55);
    const std::vector<u64> buckets = h.bucket_counts();
    ASSERT_EQ(buckets.size(), 3u); // two edges + the +Inf bucket
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
}

TEST(Metrics, RendersPrometheusAndJson)
{
    MetricsRegistry& reg = MetricsRegistry::instance();
    reg.counter("render_total", "help text").inc(3);
    reg.histogram("render_hist", {1.0}).observe(0.5);

    const std::string prom = reg.render_prometheus();
    EXPECT_NE(prom.find("# HELP render_total help text"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE render_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("render_hist_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("render_hist_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("render_hist_count 1"), std::string::npos);
    // The built-in workspace collector reports through the same pipe.
    EXPECT_NE(prom.find("bts_workspace_pool_hits_total"),
              std::string::npos);

    const std::string json = reg.render_json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"render_total\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"collected\""), std::string::npos);
}

TEST(Overhead, DisabledHooksStayWithinNoiseOfRawKernel)
{
    // The acceptance bound from the issue: with BTS_TELEMETRY compiled
    // in but runtime-disabled (the state every production run pays),
    // RnsPoly::to_ntt — which carries the span macro — must stay
    // within 2% of driving ntt_forward_batch directly. Min-of-trials
    // on both sides squeezes scheduler noise out of the comparison.
    quiesce_and_reset();
    const std::size_t n = 1 << 14;
    const int limbs = 8;
    const std::vector<u64> primes = generate_ntt_primes(50, 2 * n, limbs);
    std::vector<NttTables> tables;
    tables.reserve(primes.size());
    for (const u64 q : primes) tables.emplace_back(n, q);
    std::vector<const NttTables*> table_ptrs;
    for (const auto& t : tables) table_ptrs.push_back(&t);

    Sampler s(11);
    RnsPoly poly(n, primes, Domain::kCoeff);
    for (int i = 0; i < limbs; ++i) {
        poly.component(i).copy_from(s.uniform_poly(n, primes[i]));
    }

    using SteadyClock = std::chrono::steady_clock;
    constexpr int kTrials = 12;
    constexpr int kRepsPerTrial = 4;

    const auto min_trial = [&](auto&& body) {
        double best = 1e100;
        for (int t = 0; t < kTrials; ++t) {
            const auto t0 = SteadyClock::now();
            for (int r = 0; r < kRepsPerTrial; ++r) body();
            const double s_elapsed =
                std::chrono::duration<double>(SteadyClock::now() - t0)
                    .count();
            best = std::min(best, s_elapsed);
        }
        return best;
    };

    // Warm caches/pages once on each path before timing.
    poly.to_ntt(table_ptrs);
    poly.set_domain(Domain::kCoeff);
    ntt_forward_batch(table_ptrs, poly.component(0).data(),
                      static_cast<std::size_t>(limbs), n);

    const double raw = min_trial([&] {
        ntt_forward_batch(table_ptrs, poly.component(0).data(),
                          static_cast<std::size_t>(limbs), n);
    });
    const double hooked = min_trial([&] {
        poly.to_ntt(table_ptrs);
        poly.set_domain(Domain::kCoeff);
    });

    ASSERT_EQ(collect_trace().total_events(), 0u)
        << "runtime-disabled hooks must not emit";
    const double ratio = hooked / raw;
    printf("[measured] disabled-telemetry to_ntt / raw ntt = %.4f "
           "(raw %.3f ms, hooked %.3f ms per %d reps)\n",
           ratio, raw * 1e3, hooked * 1e3, kRepsPerTrial);
    EXPECT_LT(ratio, 1.02);
}

} // namespace
} // namespace bts::runtime::telemetry
