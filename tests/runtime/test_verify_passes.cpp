// Inter-pass verification tests: the PassManager re-checks graph
// well-formedness after every pass (builtin and custom) when
// verification is on, and a deliberately-corrupting mock pass must be
// caught immediately and reported BY NAME — the regression harness
// that turns a silent IR corruption into a named failure at the pass
// boundary that introduced it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "runtime/analysis/verifier.h"
#include "runtime/graph_workloads.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime {
namespace {

GraphTraits
small_traits()
{
    GraphTraits t;
    t.max_level = 10;
    t.bootstrap_out_level = 6;
    t.delta = std::ldexp(1.0, 40);
    return t;
}

Graph
workload()
{
    const GraphTraits t = small_traits();
    return dot_product_graph(t, 6, 4, passes::PassOptions::none());
}

/** A mock pass that silently corrupts metadata — the class of bug the
 *  inter-pass checks exist to catch. */
passes::CustomPass
level_corruptor()
{
    return {"evil-level-bump", [](Graph& g) {
                g.mutable_value(g.node(0).output).level += 1;
            }};
}

TEST(VerifyPasses, CorruptingCustomPassIsCaughtAndNamed)
{
    passes::PassOptions opts;
    opts.verify = passes::VerifyMode::kOn;
    opts.custom_passes.push_back(level_corruptor());
    try {
        passes::PassManager(opts).optimize(workload());
        FAIL() << "expected the inter-pass check to panic";
    } catch (const std::logic_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("evil-level-bump"), std::string::npos)
            << what;
        EXPECT_NE(what.find("corrupted graph"), std::string::npos);
        EXPECT_NE(what.find("meta-level"), std::string::npos);
    }
}

TEST(VerifyPasses, UseCountCorruptionIsCaughtToo)
{
    passes::PassOptions opts;
    opts.verify = passes::VerifyMode::kOn;
    opts.custom_passes.push_back(
        {"evil-use-count", [](Graph& g) {
             g.mutable_value(g.input_ids()[0]).num_uses += 2;
         }});
    try {
        passes::PassManager(opts).optimize(workload());
        FAIL() << "expected the inter-pass check to panic";
    } catch (const std::logic_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("evil-use-count"), std::string::npos);
        EXPECT_NE(what.find("structure-use-count"), std::string::npos);
    }
}

TEST(VerifyPasses, CleanCustomPassRunsUnderVerification)
{
    // A well-behaved custom pass (here: a no-op observer) passes the
    // same checks the builtin passes pass.
    bool ran = false;
    passes::PassOptions opts;
    opts.verify = passes::VerifyMode::kOn;
    opts.custom_passes.push_back(
        {"observer", [&ran](Graph&) { ran = true; }});
    const Graph g = workload();
    const passes::OptimizeResult r =
        passes::PassManager(opts).optimize(g);
    EXPECT_TRUE(ran);
    EXPECT_GT(r.graph.num_nodes(), 0u);
}

TEST(VerifyPasses, BuiltinPipelineSurvivesVerificationEverywhere)
{
    // Every builtin pass boundary is checked; the full pipeline over a
    // real workload must clear all of them.
    passes::PassOptions opts;
    opts.verify = passes::VerifyMode::kOn;
    const GraphTraits t = small_traits();
    EXPECT_NO_THROW(passes::PassManager(opts).optimize(
        poly_eval_graph(t, 6, {0.3, -1.0, 0.5, 0.25},
                        passes::PassOptions::none())));
    EXPECT_NO_THROW(passes::PassManager(opts).optimize(workload()));
}

TEST(VerifyPasses, OffModeSkipsTheChecks)
{
    // With verification off the corruptor goes uncaught — proving the
    // mode switch is real. The corrupted result is then flagged by a
    // direct analyze() call, which is the recovery path.
    passes::PassOptions opts;
    opts.verify = passes::VerifyMode::kOff;
    opts.custom_passes.push_back(level_corruptor());
    const passes::OptimizeResult r =
        passes::PassManager(opts).optimize(workload());
    const analysis::Analysis a = analysis::analyze(r.graph);
    EXPECT_FALSE(a.ok());
}

TEST(VerifyPasses, AutoModeHonorsBtsDebugEnv)
{
    // kAuto = on under BTS_DEBUG (and always in Debug builds). setenv
    // is safe here: gtest runs cases serially in-process.
    setenv("BTS_DEBUG", "1", 1);
    passes::PassOptions opts;
    opts.verify = passes::VerifyMode::kAuto;
    opts.custom_passes.push_back(level_corruptor());
    EXPECT_THROW(passes::PassManager(opts).optimize(workload()),
                 std::logic_error);
    unsetenv("BTS_DEBUG");
}

} // namespace
} // namespace bts::runtime
