/**
 * The application validation loop: each paper app built through the
 * runtime graph API must lower to the SAME workload the hand-written
 * Table 5/6 generator emits — same op-kind histogram, same bootstrap
 * count — on every Table 4 instance. Levels and object ids are allowed
 * to differ (the apps' carried chains meet the generators' shadow
 * counters only at refresh points); the histogram + bootstrap-count
 * pin is what validates the simulator's application model against the
 * functional library's circuit definitions.
 */
#include <gtest/gtest.h>

#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"
#include "runtime/lowering.h"
#include "workloads/workloads.h"

namespace bts::runtime::apps {
namespace {

class AppPin : public ::testing::TestWithParam<int>
{
  protected:
    hw::CkksInstance
    inst() const
    {
        return hw::table4_instances()[GetParam()];
    }

    static void
    expect_pinned(const sim::Trace& lowered, const sim::Trace& hand)
    {
        EXPECT_EQ(sim::kind_histogram(lowered),
                  sim::kind_histogram(hand));
        EXPECT_EQ(lowered.bootstrap_count, hand.bootstrap_count);
        EXPECT_EQ(lowered.ops.size(), hand.ops.size());
    }
};

// The pin contract is against the RAW builder form (optimize = false,
// the pass-off escape hatch); a separate test below shows the default
// optimized form lowers to the same histogram anyway (lowering expands
// every pass-introduced composite back to primitives).

TEST_P(AppPin, HelrMatchesTable5Generator)
{
    const auto i = inst();
    auto cfg = HelrConfig::paper();
    cfg.optimize = false;
    const auto app = build_helr(cfg, traits_for(i));
    expect_pinned(lower_to_trace(app.graph, i), workloads::helr(i));
}

TEST_P(AppPin, ResnetMatchesTable6Generator)
{
    const auto i = inst();
    auto cfg = ResnetConfig::paper();
    cfg.optimize = false;
    const auto app = build_resnet(cfg, traits_for(i));
    expect_pinned(lower_to_trace(app.graph, i), workloads::resnet20(i));
}

TEST_P(AppPin, SortingMatchesTable6Generator)
{
    const auto i = inst();
    auto cfg = SortConfig::paper();
    cfg.optimize = false;
    const auto app = build_sort(cfg, traits_for(i));
    expect_pinned(lower_to_trace(app.graph, i), workloads::sorting(i));
}

TEST_P(AppPin, OptimizedGraphsLowerToSameHistogram)
{
    // The pass pipeline regroups and fuses but must not change the op
    // mix the simulator prices: rotation CSE only merges rotations
    // with DISTINCT amounts of one value (the apps have no duplicate
    // amounts to dedupe), and lowering expands every composite, so the
    // optimized graphs lower to the raw form's exact histogram.
    const auto i = inst();
    const GraphTraits t = traits_for(i);
    expect_pinned(
        lower_to_trace(build_helr(HelrConfig::paper(), t).graph, i),
        workloads::helr(i));
    expect_pinned(
        lower_to_trace(build_resnet(ResnetConfig::paper(), t).graph, i),
        workloads::resnet20(i));
    expect_pinned(
        lower_to_trace(build_sort(SortConfig::paper(), t).graph, i),
        workloads::sorting(i));
}

TEST_P(AppPin, LoweredTracesRespectLevelBounds)
{
    // The graph ports must satisfy the same level-geometry invariant
    // the hand generators are tested for.
    const auto i = inst();
    const GraphTraits t = traits_for(i);
    std::vector<Graph> graphs;
    graphs.push_back(std::move(build_helr(HelrConfig::paper(), t).graph));
    graphs.push_back(
        std::move(build_resnet(ResnetConfig::paper(), t).graph));
    graphs.push_back(std::move(build_sort(SortConfig::paper(), t).graph));
    for (const Graph& g : graphs) {
        const sim::Trace trace = lower_to_trace(g, i);
        for (const auto& op : trace.ops) {
            EXPECT_GE(op.level, 1) << g.name();
            EXPECT_LE(op.level, i.max_level) << g.name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Table4, AppPin, ::testing::Values(0, 1, 2));

TEST(AppBuild, ResnetBootstrapCountsMatchTable6)
{
    // The graph port reproduces the paper's Table 6 bootstrap counts
    // directly (same pin as the hand generator's).
    const auto boots = [](const hw::CkksInstance& i) {
        return lower_to_trace(
                   build_resnet(ResnetConfig::paper(), traits_for(i))
                       .graph,
                   i)
            .bootstrap_count;
    };
    EXPECT_NEAR(boots(hw::ins1()), 53, 4);
    EXPECT_NEAR(boots(hw::ins2()), 22, 4);
    EXPECT_NEAR(boots(hw::ins3()), 19, 5);
}

TEST(AppBuild, LevelBudgetExhaustionFailsAtBuildTime)
{
    // An instance whose refreshed budget cannot fit one iteration /
    // stage must fail when the graph is BUILT — a clear error instead
    // of a bad decrypt half way through execution.
    GraphTraits tiny;
    tiny.max_level = 14;
    tiny.bootstrap_out_level = 2;
    tiny.delta = 1099511627776.0;
    EXPECT_THROW(build_helr(HelrConfig::functional(), tiny),
                 std::invalid_argument);
    EXPECT_THROW(build_sort(SortConfig::functional(), tiny),
                 std::invalid_argument);
    GraphTraits dead = tiny;
    dead.bootstrap_out_level = 1;
    EXPECT_THROW(build_resnet(ResnetConfig::functional(), dead),
                 std::invalid_argument);
}

TEST(AppBuild, SortMasksPartitionSlots)
{
    const std::size_t slots = 16;
    for (int d : {1, 2}) {
        const auto lo = sort_mask_lo(2, d, slots);
        const auto hi = sort_mask_hi(2, d, slots);
        for (std::size_t i = 0; i < slots; ++i) {
            EXPECT_DOUBLE_EQ(lo[i].real() + hi[i].real(), 1.0);
        }
    }
    // Final phase sorts every block ascending: the lower partner keeps
    // the minimum (select = -0.5) everywhere.
    const auto sel = sort_select_mask(2, 2, 2, slots);
    for (std::size_t i = 0; i < slots; ++i) {
        const bool lower = (i & 2) == 0;
        EXPECT_DOUBLE_EQ(sel[i].real(), lower ? -0.5 : 0.5);
    }
}

} // namespace
} // namespace bts::runtime::apps
