/**
 * @file
 * bts_lint: run the static graph verifier over builtin workload/app
 * graphs and report the diagnostics — the repository's "compile-check
 * the circuits" tool. No keys, no ciphertexts, no execution: a full
 * Table 5/6 application graph lints in milliseconds, which is what
 * lets CI catch graph regressions on every push.
 *
 * Usage:
 *   bts_lint --list
 *   bts_lint --all-builtin [--raw] [--instance=ins1|ins2|ins3]
 *            [--format=text|json]
 *   bts_lint --graph=helr [--dot=helr.dot] [...]
 *   bts_lint --graph=helr --cost [--schedule]
 *            [--max-peak-live-mib=N] [--max-evk-ws-mib=N]
 *            [--min-parallelism=X]
 *
 * --raw lints the unoptimized builder-authored form next to the
 * default pass-pipeline output; --dot writes a Graphviz rendering
 * annotated with each node's re-derived level and worst-case
 * noise/budget bits (requires exactly one selected graph). Exit code:
 * 0 when no error-level diagnostic was produced, 1 otherwise, 2 on
 * usage errors.
 *
 * --cost runs the static resource analyzer (runtime/analysis/resource.h)
 * against the selected instance and appends the cost report (exact op
 * counts, work split, evk traffic, peak live set, critical path); with
 * --dot the rendering is the cost/liveness-annotated form instead of
 * the verifier's. --schedule prints the per-node serial schedule
 * table. The --max-peak-live-mib / --max-evk-ws-mib /
 * --min-parallelism budgets turn resource findings into RS- rule
 * diagnostics (rs-peak-live, rs-evk-working-set, rs-critical-path)
 * merged into the lint report — errors count toward the exit code.
 */
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "hwparams/instance.h"
#include "runtime/analysis/resource.h"
#include "runtime/analysis/verifier.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"

namespace {

using namespace bts;
using namespace bts::runtime;

struct Builtin
{
    const char* name;
    std::function<Graph(const hw::CkksInstance&, bool raw)> build;
};

const std::vector<Builtin>&
builtins()
{
    static const std::vector<Builtin> list = {
        {"tmult",
         [](const hw::CkksInstance& inst, bool raw) {
             return tmult_graph(inst, raw ? passes::PassOptions::none()
                                          : passes::PassOptions{});
         }},
        {"dot_product",
         [](const hw::CkksInstance& inst, bool raw) {
             const GraphTraits t = traits_for(inst);
             return dot_product_graph(t, t.bootstrap_out_level, 8,
                                      raw ? passes::PassOptions::none()
                                          : passes::PassOptions{});
         }},
        {"poly_eval",
         [](const hw::CkksInstance& inst, bool raw) {
             const GraphTraits t = traits_for(inst);
             return poly_eval_graph(t, t.bootstrap_out_level,
                                    {0.3, -1.0, 0.5, 0.25},
                                    raw ? passes::PassOptions::none()
                                        : passes::PassOptions{});
         }},
        {"bootstrap_refresh",
         [](const hw::CkksInstance& inst, bool raw) {
             return bootstrap_refresh_graph(
                 traits_for(inst), raw ? passes::PassOptions::none()
                                       : passes::PassOptions{});
         }},
        {"helr",
         [](const hw::CkksInstance& inst, bool raw) {
             apps::HelrConfig cfg = apps::HelrConfig::paper();
             cfg.optimize = !raw;
             return std::move(
                 apps::build_helr(cfg, traits_for(inst)).graph);
         }},
        {"resnet",
         [](const hw::CkksInstance& inst, bool raw) {
             apps::ResnetConfig cfg = apps::ResnetConfig::paper();
             cfg.optimize = !raw;
             return std::move(
                 apps::build_resnet(cfg, traits_for(inst)).graph);
         }},
        {"sort",
         [](const hw::CkksInstance& inst, bool raw) {
             apps::SortConfig cfg = apps::SortConfig::paper();
             cfg.optimize = !raw;
             return std::move(
                 apps::build_sort(cfg, traits_for(inst)).graph);
         }},
    };
    return list;
}

int
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--all-builtin | --graph=<name>...] [--raw]\n"
           "       [--instance=ins1|ins2|ins3] [--format=text|json]\n"
           "       [--dot=<path>] [--list]\n"
           "       [--cost] [--schedule] [--max-peak-live-mib=<N>]\n"
           "       [--max-evk-ws-mib=<N>] [--min-parallelism=<X>]\n"
           "exit 0: no error diagnostics; 1: errors found; 2: usage\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> names;
    std::string format = "text";
    std::string dot_path;
    std::string instance = "ins1";
    bool raw = false;
    bool all = false;
    bool cost = false;
    bool schedule = false;
    bool limits_set = false;
    bts::runtime::analysis::ResourceLimits limits;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) {
            return arg.substr(std::strlen(prefix));
        };
        const auto num = [&](const char* prefix) {
            return std::stod(value(prefix));
        };
        if (arg == "--list") {
            for (const Builtin& b : builtins()) {
                std::cout << b.name << "\n";
            }
            return 0;
        } else if (arg == "--all-builtin") {
            all = true;
        } else if (arg == "--raw") {
            raw = true;
        } else if (arg.rfind("--graph=", 0) == 0) {
            names.push_back(value("--graph="));
        } else if (arg.rfind("--format=", 0) == 0) {
            format = value("--format=");
        } else if (arg.rfind("--dot=", 0) == 0) {
            dot_path = value("--dot=");
        } else if (arg.rfind("--instance=", 0) == 0) {
            instance = value("--instance=");
        } else if (arg == "--cost") {
            cost = true;
        } else if (arg == "--schedule") {
            schedule = true;
        } else if (arg.rfind("--max-peak-live-mib=", 0) == 0) {
            limits.max_peak_live_bytes =
                num("--max-peak-live-mib=") * 1024.0 * 1024.0;
            limits_set = true;
        } else if (arg.rfind("--max-evk-ws-mib=", 0) == 0) {
            limits.max_evk_working_set_bytes =
                num("--max-evk-ws-mib=") * 1024.0 * 1024.0;
            limits_set = true;
        } else if (arg.rfind("--min-parallelism=", 0) == 0) {
            limits.min_parallelism = num("--min-parallelism=");
            limits_set = true;
        } else {
            std::cerr << "bts_lint: unknown argument '" << arg << "'\n";
            return usage(argv[0]);
        }
    }
    if (format != "text" && format != "json") {
        std::cerr << "bts_lint: unknown format '" << format << "'\n";
        return usage(argv[0]);
    }
    if (all) {
        for (const Builtin& b : builtins()) names.push_back(b.name);
    }
    if (names.empty()) return usage(argv[0]);
    if (!dot_path.empty() && names.size() != 1) {
        std::cerr << "bts_lint: --dot needs exactly one graph\n";
        return usage(argv[0]);
    }

    hw::CkksInstance inst;
    if (instance == "ins1") {
        inst = hw::ins1();
    } else if (instance == "ins2") {
        inst = hw::ins2();
    } else if (instance == "ins3") {
        inst = hw::ins3();
    } else {
        std::cerr << "bts_lint: unknown instance '" << instance << "'\n";
        return usage(argv[0]);
    }

    bool any_errors = false;
    bool first = true;
    if (format == "json") std::cout << "[";
    for (const std::string& name : names) {
        const Builtin* builtin = nullptr;
        for (const Builtin& b : builtins()) {
            if (name == b.name) {
                builtin = &b;
                break;
            }
        }
        if (builtin == nullptr) {
            std::cerr << "bts_lint: unknown graph '" << name
                      << "' (try --list)\n";
            return usage(argv[0]);
        }
        try {
            const Graph g = builtin->build(inst, raw);
            const analysis::Analysis a = analysis::analyze(g);
            std::vector<analysis::Diagnostic> diags = a.diags;
            const bool want_resources = cost || schedule || limits_set;
            analysis::ResourceSummary summary;
            if (want_resources) {
                summary = analysis::analyze_resources(g, inst);
                if (limits_set) {
                    const std::vector<analysis::Diagnostic> rs =
                        analysis::check_resources(summary, limits);
                    diags.insert(diags.end(), rs.begin(), rs.end());
                }
            }
            any_errors = any_errors || analysis::has_errors(diags);
            if (format == "json") {
                std::cout << (first ? "" : ",\n");
                if (cost) {
                    // Wrapper object so the lint payload keeps its
                    // grep-stable shape under the "lint" key.
                    std::cout << "{\"lint\": "
                              << analysis::render_json(g.name(), diags)
                              << ", \"resources\": "
                              << analysis::render_resource_json(g.name(),
                                                                summary)
                              << "}";
                } else {
                    std::cout << analysis::render_json(g.name(), diags);
                }
            } else {
                std::cout << analysis::render_text(g.name(), diags);
                if (cost) {
                    std::cout << analysis::render_resource_text(g.name(),
                                                                summary);
                }
                if (schedule) {
                    std::cout << analysis::render_schedule_text(g,
                                                                summary);
                }
            }
            first = false;
            if (!dot_path.empty()) {
                std::ofstream out(dot_path);
                if (!out) {
                    std::cerr << "bts_lint: cannot write '" << dot_path
                              << "'\n";
                    return 2;
                }
                out << (cost ? analysis::to_resource_dot(g, summary)
                             : analysis::to_annotated_dot(g, a));
            }
        } catch (const analysis::VerifyError& e) {
            // The builder itself refused the graph: report its
            // diagnostics in the same shape as analysis findings.
            any_errors = true;
            if (format == "json") {
                std::cout << (first ? "" : ",\n")
                          << analysis::render_json(e.graph_name(),
                                                   e.diagnostics());
            } else {
                std::cout << analysis::render_text(e.graph_name(),
                                                   e.diagnostics());
            }
            first = false;
        } catch (const std::exception& e) {
            any_errors = true;
            std::cerr << "bts_lint: building '" << name
                      << "' failed: " << e.what() << "\n";
        }
    }
    if (format == "json") std::cout << "]\n";
    return any_errors ? 1 : 0;
}
