/**
 * @file
 * bts_lint: run the static graph verifier over builtin workload/app
 * graphs and report the diagnostics — the repository's "compile-check
 * the circuits" tool. No keys, no ciphertexts, no execution: a full
 * Table 5/6 application graph lints in milliseconds, which is what
 * lets CI catch graph regressions on every push.
 *
 * Usage:
 *   bts_lint --list
 *   bts_lint --all-builtin [--raw] [--instance=ins1|ins2|ins3]
 *            [--format=text|json]
 *   bts_lint --graph=helr [--dot=helr.dot] [...]
 *
 * --raw lints the unoptimized builder-authored form next to the
 * default pass-pipeline output; --dot writes a Graphviz rendering
 * annotated with each node's re-derived level and worst-case
 * noise/budget bits (requires exactly one selected graph). Exit code:
 * 0 when no error-level diagnostic was produced, 1 otherwise, 2 on
 * usage errors.
 */
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "hwparams/instance.h"
#include "runtime/analysis/verifier.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"

namespace {

using namespace bts;
using namespace bts::runtime;

struct Builtin
{
    const char* name;
    std::function<Graph(const hw::CkksInstance&, bool raw)> build;
};

const std::vector<Builtin>&
builtins()
{
    static const std::vector<Builtin> list = {
        {"tmult",
         [](const hw::CkksInstance& inst, bool raw) {
             return tmult_graph(inst, raw ? passes::PassOptions::none()
                                          : passes::PassOptions{});
         }},
        {"dot_product",
         [](const hw::CkksInstance& inst, bool raw) {
             const GraphTraits t = traits_for(inst);
             return dot_product_graph(t, t.bootstrap_out_level, 8,
                                      raw ? passes::PassOptions::none()
                                          : passes::PassOptions{});
         }},
        {"poly_eval",
         [](const hw::CkksInstance& inst, bool raw) {
             const GraphTraits t = traits_for(inst);
             return poly_eval_graph(t, t.bootstrap_out_level,
                                    {0.3, -1.0, 0.5, 0.25},
                                    raw ? passes::PassOptions::none()
                                        : passes::PassOptions{});
         }},
        {"bootstrap_refresh",
         [](const hw::CkksInstance& inst, bool raw) {
             return bootstrap_refresh_graph(
                 traits_for(inst), raw ? passes::PassOptions::none()
                                       : passes::PassOptions{});
         }},
        {"helr",
         [](const hw::CkksInstance& inst, bool raw) {
             apps::HelrConfig cfg = apps::HelrConfig::paper();
             cfg.optimize = !raw;
             return std::move(
                 apps::build_helr(cfg, traits_for(inst)).graph);
         }},
        {"resnet",
         [](const hw::CkksInstance& inst, bool raw) {
             apps::ResnetConfig cfg = apps::ResnetConfig::paper();
             cfg.optimize = !raw;
             return std::move(
                 apps::build_resnet(cfg, traits_for(inst)).graph);
         }},
        {"sort",
         [](const hw::CkksInstance& inst, bool raw) {
             apps::SortConfig cfg = apps::SortConfig::paper();
             cfg.optimize = !raw;
             return std::move(
                 apps::build_sort(cfg, traits_for(inst)).graph);
         }},
    };
    return list;
}

int
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--all-builtin | --graph=<name>...] [--raw]\n"
           "       [--instance=ins1|ins2|ins3] [--format=text|json]\n"
           "       [--dot=<path>] [--list]\n"
           "exit 0: no error diagnostics; 1: errors found; 2: usage\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> names;
    std::string format = "text";
    std::string dot_path;
    std::string instance = "ins1";
    bool raw = false;
    bool all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--list") {
            for (const Builtin& b : builtins()) {
                std::cout << b.name << "\n";
            }
            return 0;
        } else if (arg == "--all-builtin") {
            all = true;
        } else if (arg == "--raw") {
            raw = true;
        } else if (arg.rfind("--graph=", 0) == 0) {
            names.push_back(value("--graph="));
        } else if (arg.rfind("--format=", 0) == 0) {
            format = value("--format=");
        } else if (arg.rfind("--dot=", 0) == 0) {
            dot_path = value("--dot=");
        } else if (arg.rfind("--instance=", 0) == 0) {
            instance = value("--instance=");
        } else {
            std::cerr << "bts_lint: unknown argument '" << arg << "'\n";
            return usage(argv[0]);
        }
    }
    if (format != "text" && format != "json") {
        std::cerr << "bts_lint: unknown format '" << format << "'\n";
        return usage(argv[0]);
    }
    if (all) {
        for (const Builtin& b : builtins()) names.push_back(b.name);
    }
    if (names.empty()) return usage(argv[0]);
    if (!dot_path.empty() && names.size() != 1) {
        std::cerr << "bts_lint: --dot needs exactly one graph\n";
        return usage(argv[0]);
    }

    hw::CkksInstance inst;
    if (instance == "ins1") {
        inst = hw::ins1();
    } else if (instance == "ins2") {
        inst = hw::ins2();
    } else if (instance == "ins3") {
        inst = hw::ins3();
    } else {
        std::cerr << "bts_lint: unknown instance '" << instance << "'\n";
        return usage(argv[0]);
    }

    bool any_errors = false;
    bool first = true;
    if (format == "json") std::cout << "[";
    for (const std::string& name : names) {
        const Builtin* builtin = nullptr;
        for (const Builtin& b : builtins()) {
            if (name == b.name) {
                builtin = &b;
                break;
            }
        }
        if (builtin == nullptr) {
            std::cerr << "bts_lint: unknown graph '" << name
                      << "' (try --list)\n";
            return usage(argv[0]);
        }
        try {
            const Graph g = builtin->build(inst, raw);
            const analysis::Analysis a = analysis::analyze(g);
            any_errors = any_errors || !a.ok();
            if (format == "json") {
                std::cout << (first ? "" : ",\n")
                          << analysis::render_json(g.name(), a.diags);
            } else {
                std::cout << analysis::render_text(g.name(), a.diags);
            }
            first = false;
            if (!dot_path.empty()) {
                std::ofstream out(dot_path);
                if (!out) {
                    std::cerr << "bts_lint: cannot write '" << dot_path
                              << "'\n";
                    return 2;
                }
                out << analysis::to_annotated_dot(g, a);
            }
        } catch (const analysis::VerifyError& e) {
            // The builder itself refused the graph: report its
            // diagnostics in the same shape as analysis findings.
            any_errors = true;
            if (format == "json") {
                std::cout << (first ? "" : ",\n")
                          << analysis::render_json(e.graph_name(),
                                                   e.diagnostics());
            } else {
                std::cout << analysis::render_text(e.graph_name(),
                                                   e.diagnostics());
            }
            first = false;
        } catch (const std::exception& e) {
            any_errors = true;
            std::cerr << "bts_lint: building '" << name
                      << "' failed: " << e.what() << "\n";
        }
    }
    if (format == "json") std::cout << "]\n";
    return any_errors ? 1 : 0;
}
