/**
 * @file
 * bts_profile: run a builtin workload/app graph through the real
 * serving stack (GraphServer lanes -> Executor -> Evaluator -> RNS
 * kernels) with runtime tracing enabled, then close the loop between
 * the static cost model and what actually ran: a per-op-kind table of
 * node count, measured seconds, statically predicted seconds and the
 * per-kind share of each — the software counterpart of the paper's
 * predicted-vs-measured methodology.
 *
 * Usage:
 *   bts_profile --list
 *   bts_profile --graph=resnet [--lanes=2] [--jobs=3]
 *               [--format=text|json] [--trace=FILE] [--metrics]
 *
 * --trace writes the full capture as Chrome trace-event JSON (load in
 * Perfetto / chrome://tracing; one track per server lane — the
 * measured Fig. 8 timeline). --metrics appends the process metrics
 * registry in Prometheus text format after the run.
 *
 * The instance is the runtime test suite's bootstrap-capable small
 * environment (N=2^8, L=20, dnum=3, 64 slots, radix-8 CtS/StC —
 * mirror of tests/ckks/test_utils.h BootTestEnv; insecure, see
 * DESIGN.md). Graphs that never bootstrap (dot, poly) skip the
 * bootstrapper build and probe entirely, so they smoke-test in
 * seconds. Exit code: 0 on success, 2 on usage errors.
 */
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ckks/bootstrapper.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"
#include "runtime/server.h"
#include "runtime/telemetry/chrome_trace.h"
#include "runtime/telemetry/metrics.h"
#include "runtime/telemetry/profile.h"
#include "runtime/telemetry/trace.h"

namespace {

using namespace bts;
using namespace bts::runtime;

constexpr std::size_t kSlots = 64;

struct BuiltinSpec
{
    const char* name;
    const char* what;
    bool needs_bootstrap;
};

const std::vector<BuiltinSpec>&
builtins()
{
    static const std::vector<BuiltinSpec> list = {
        {"dot", "encrypted dot product (rotation log-tree)", false},
        {"poly", "degree-3 Horner polynomial evaluation", false},
        {"refresh", "one Bootstrap refresh", true},
        {"helr", "HELR logistic training, functional scale", true},
        {"resnet", "ResNet-20-style inference, functional scale", true},
        {"sort", "bitonic sorting network, functional scale", true},
    };
    return list;
}

/**
 * The serving environment: context, key material and (for graphs that
 * refresh) a bootstrapper whose output level is pinned by one probe
 * refresh, exactly like the runtime test suites do.
 */
struct ProfileEnv
{
    explicit ProfileEnv(bool needs_bootstrap)
        : ctx(params()),
          encoder(ctx),
          evaluator(ctx, encoder),
          keygen(ctx, params().seed + 1),
          encryptor(ctx, params().seed + 2)
    {
        sk = keygen.gen_secret_key();
        mult_key = keygen.gen_mult_key(sk);
        conj_key = keygen.gen_conjugation_key(sk);
        traits.max_level = ctx.max_level();
        traits.delta = ctx.delta();

        // Rotation-key union covering every builtin at functional
        // scale (the test suites' extra list plus the dot tree).
        std::set<int> amounts = {-2, -1, 1, 2, 3, 4, 5, 6, 8, 16, 32};
        if (needs_bootstrap) {
            BootstrapConfig cfg;
            cfg.slots = kSlots;
            cfg.sine_degree = 119;
            cfg.cts_radix = 8;
            cfg.stc_radix = 8;
            boot = std::make_unique<Bootstrapper>(ctx, encoder, evaluator,
                                                  cfg);
            for (const int r : boot->required_rotations()) {
                amounts.insert(r);
            }
        }
        rot_keys = keygen.gen_rotation_keys(
            sk, {amounts.begin(), amounts.end()});
        if (boot) {
            boot->set_keys(&mult_key, &rot_keys, &conj_key);
            // One probe refresh pins the refreshed level the app
            // builders size their iteration budgets against.
            const Ciphertext probe = encrypt(random_vec(0.3, 7), 0);
            traits.bootstrap_out_level = boot->bootstrap(probe).level;
        } else {
            traits.bootstrap_out_level = ctx.max_level();
        }
    }

    static CkksParams
    params()
    {
        CkksParams p;
        p.n = 1 << 8;
        p.max_level = 20;
        p.dnum = 3;
        p.q0_bits = 50;
        p.scale_bits = 40;
        p.special_bits = 50;
        p.hamming_weight = 32;
        p.seed = 7321;
        return p;
    }

    std::vector<Complex>
    random_vec(double magnitude, u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<Complex> z(kSlots);
        for (auto& v : z) {
            v = Complex(magnitude * (2 * rng.uniform_real() - 1), 0.0);
        }
        return z;
    }

    Ciphertext
    encrypt(const std::vector<Complex>& z, int level)
    {
        const Plaintext pt = encoder.encode(z, ctx.delta(), level);
        return encryptor.encrypt_symmetric(pt, sk);
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &evaluator;
        r.encoder = &encoder;
        r.mult_key = &mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &conj_key;
        r.bootstrapper = boot.get();
        return r;
    }

    /** Bind every declared input of @p g with random slot data at the
     *  declared exact level — valid metadata for any builtin; the
     *  profile cares about timing, not decrypted values. */
    Binding
    make_binding(const Graph& g, u64 seed)
    {
        Binding b;
        for (const int id : g.input_ids()) {
            if (g.value(id).is_plain) {
                b.bind(Value{id},
                       encoder.encode(random_vec(0.3, seed + u64(id)),
                                      traits.delta, traits.max_level));
            } else {
                b.bind(Value{id}, encrypt(random_vec(0.3, seed + u64(id)),
                                          g.value(id).level));
            }
        }
        return b;
    }

    CkksContext ctx;
    CkksEncoder encoder;
    Evaluator evaluator;
    KeyGenerator keygen;
    Encryptor encryptor;
    SecretKey sk;
    EvalKey mult_key;
    EvalKey conj_key;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
    GraphTraits traits;
};

Graph
build_builtin(const std::string& name, const GraphTraits& traits)
{
    using namespace bts::runtime::apps;
    if (name == "dot") {
        return dot_product_graph(traits, traits.max_level, 3);
    }
    if (name == "poly") {
        return poly_eval_graph(traits, traits.max_level,
                               {1.0, 0.5, 0.25, 0.125});
    }
    if (name == "refresh") return bootstrap_refresh_graph(traits);
    if (name == "helr") {
        HelrConfig cfg = HelrConfig::functional();
        cfg.iterations = 2;
        return build_helr(cfg, traits).graph;
    }
    if (name == "resnet") {
        return build_resnet(ResnetConfig::functional(), traits).graph;
    }
    if (name == "sort") {
        return build_sort(SortConfig::functional(), traits).graph;
    }
    throw std::invalid_argument("unknown builtin graph: " + name);
}

struct Args
{
    bool list = false;
    bool metrics = false;
    std::string graph;
    std::string format = "text";
    std::string trace_path;
    int lanes = 2;
    int jobs = 3;
};

std::optional<Args>
parse_args(int argc, char** argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg == "--list") {
            a.list = true;
        } else if (arg == "--metrics") {
            a.metrics = true;
        } else if (arg.rfind("--graph=", 0) == 0) {
            a.graph = value("--graph=");
        } else if (arg.rfind("--format=", 0) == 0) {
            a.format = value("--format=");
        } else if (arg.rfind("--trace=", 0) == 0) {
            a.trace_path = value("--trace=");
        } else if (arg.rfind("--lanes=", 0) == 0) {
            a.lanes = std::stoi(value("--lanes="));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            a.jobs = std::stoi(value("--jobs="));
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return std::nullopt;
        }
    }
    if (!a.list && a.graph.empty()) {
        std::cerr << "pick a graph: --graph=NAME (or --list)\n";
        return std::nullopt;
    }
    if (a.format != "text" && a.format != "json") {
        std::cerr << "--format must be text or json\n";
        return std::nullopt;
    }
    if (a.lanes < 1 || a.jobs < 1) {
        std::cerr << "--lanes and --jobs must be >= 1\n";
        return std::nullopt;
    }
    return a;
}

int
run(const Args& args)
{
    namespace tel = bts::runtime::telemetry;

    const BuiltinSpec* spec = nullptr;
    for (const BuiltinSpec& b : builtins()) {
        if (args.graph == b.name) spec = &b;
    }
    if (spec == nullptr) {
        std::cerr << "unknown builtin graph: " << args.graph
                  << " (try --list)\n";
        return 2;
    }

    ProfileEnv env(spec->needs_bootstrap);
    const Graph g = build_builtin(args.graph, env.traits);

    ServerOptions opts;
    opts.lanes = args.lanes;
    GraphServer server(env.resources(), opts);
    // register_graph verifies, optimizes, prices the graph AND installs
    // the per-node predicted costs on every lane executor — jobs must
    // submit against the optimized form for the spans to carry them.
    const passes::OptimizeResult* reg = server.register_graph(g);
    const analysis::ResourceSummary* summary =
        server.resource_summary(reg->graph);
    if (summary == nullptr) {
        std::cerr << "note: no static cost estimate for this graph on "
                     "the serving instance; predicted column will be 0\n";
    }

    // Trace every layer except the workspace pool (its per-buffer
    // instants dwarf everything else; enable by hand when studying the
    // pool itself).
    tel::set_enabled(tel::kAllCategories &
                     ~static_cast<u32>(tel::Category::kWorkspace));
    tel::reset_trace();

    std::vector<std::future<JobResult>> futures;
    futures.reserve(static_cast<std::size_t>(args.jobs));
    for (int j = 0; j < args.jobs; ++j) {
        JobRequest req;
        req.graph = &reg->graph;
        req.client = "bts_profile";
        req.inputs = env.make_binding(reg->graph, 9000 + u64(j) * 131);
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futures) f.get();
    server.drain();
    tel::set_enabled(0);

    const tel::Trace trace = tel::collect_trace();
    const tel::ProfileReport report = tel::profile_from_trace(trace);

    if (args.format == "json") {
        std::cout << tel::render_profile_json(report) << "\n";
    } else {
        std::cout << "graph: " << reg->graph.name() << "  lanes: "
                  << args.lanes << "  jobs: " << args.jobs << "\n"
                  << tel::render_profile_text(report);
    }

    if (!args.trace_path.empty()) {
        std::ofstream out(args.trace_path);
        if (!out) {
            std::cerr << "cannot open " << args.trace_path << "\n";
            return 2;
        }
        tel::write_chrome_trace(trace, out);
        std::cerr << "wrote " << trace.total_events() << " events to "
                  << args.trace_path << "\n";
    }
    if (args.metrics) {
        std::cout << tel::MetricsRegistry::instance().render_prometheus();
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::optional<Args> args = parse_args(argc, argv);
    if (!args) return 2;
    if (args->list) {
        for (const BuiltinSpec& b : builtins()) {
            std::cout << b.name << "\t" << b.what
                      << (b.needs_bootstrap ? "\t[bootstrap]" : "")
                      << "\n";
        }
        return 0;
    }
    try {
        return run(*args);
    } catch (const std::exception& e) {
        std::cerr << "bts_profile: " << e.what() << "\n";
        return 2;
    }
}
