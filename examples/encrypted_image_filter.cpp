/**
 * @file
 * Encrypted image filtering — the convolution pattern ResNet-20's
 * homomorphic layers (Table 6 of the paper) are built from. A 32x32
 * grayscale image is packed row-major into ciphertext slots; a 3x3
 * sharpen kernel is applied with 9 hoisted rotations and plaintext
 * multiplies, exactly the rotate-multiply-accumulate structure the BTS
 * channel-packing workload uses.
 */
#include <cmath>
#include <cstdio>

#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

int
main()
{
    using namespace bts;

    CkksParams params;
    params.n = 1 << 12;
    params.max_level = 6;
    params.dnum = 2;
    const CkksContext ctx(params);
    const CkksEncoder encoder(ctx);
    const Evaluator eval(ctx, encoder);
    KeyGenerator keygen(ctx, 21);
    const SecretKey sk = keygen.gen_secret_key();
    Encryptor encryptor(ctx, 22);
    const Decryptor decryptor(ctx);

    constexpr int kW = 32, kH = 32;
    constexpr std::size_t kSlots = kW * kH * 2; // 2048 slots, pad x2

    // Synthetic image: a bright diagonal stripe on a gradient.
    std::vector<Complex> image(kSlots, Complex(0, 0));
    for (int y = 0; y < kH; ++y) {
        for (int x = 0; x < kW; ++x) {
            double v = 0.2 + 0.3 * x / kW;
            if (std::abs(x - y) < 3) v += 0.4;
            image[y * kW + x] = Complex(v, 0);
        }
    }

    // 3x3 sharpen kernel.
    const double kernel[3][3] = {
        {0, -0.5, 0}, {-0.5, 3.0, -0.5}, {0, -0.5, 0}};

    const Ciphertext ct = encryptor.encrypt_symmetric(
        encoder.encode(image, ctx.delta(), ctx.max_level()), sk);

    // Rotation amounts for the 9 taps (row-major packing): dy*W + dx.
    std::vector<int> amounts;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            const int a = dy * kW + dx;
            if (a != 0) amounts.push_back(a);
        }
    }
    // Negative shifts wrap via slots - |a|.
    std::vector<int> key_amounts;
    for (int a : amounts) {
        key_amounts.push_back(a >= 0 ? a
                                     : static_cast<int>(kSlots) + a);
    }
    const RotationKeys keys =
        keygen.gen_rotation_keys(sk, key_amounts);

    // Hoisted rotations: one ModUp shared by all 8 shifted taps.
    const auto shifted = eval.rotate_hoisted(ct, key_amounts, keys);

    // Accumulate kernel * shifted image (mask the center tap inline).
    const double pt_scale =
        static_cast<double>(ctx.q_primes()[ctx.max_level()]);
    auto tap_plain = [&](double coeff) {
        return encoder.encode_scalar(Complex(coeff, 0), kSlots, pt_scale,
                                     ctx.max_level());
    };
    Ciphertext acc = eval.mult_plain(ct, tap_plain(kernel[1][1]));
    std::size_t idx = 0;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dy == 0 && dx == 0) continue;
            const double c = kernel[dy + 1][dx + 1];
            if (c != 0.0) {
                const Ciphertext term =
                    eval.mult_plain(shifted[idx], tap_plain(c));
                acc.b.add_inplace(term.b);
                acc.a.add_inplace(term.a);
            }
            ++idx;
        }
    }
    eval.rescale_inplace(acc);
    acc.scale = ctx.delta();

    // Decrypt and check the interior against the plaintext filter.
    const auto out = encoder.decode(decryptor.decrypt(acc, sk));
    double worst = 0;
    for (int y = 1; y < kH - 1; ++y) {
        for (int x = 1; x < kW - 1; ++x) {
            double expect = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    expect += kernel[dy + 1][dx + 1] *
                              image[(y + dy) * kW + (x + dx)].real();
                }
            }
            worst = std::max(
                worst, std::abs(out[y * kW + x].real() - expect));
        }
    }
    printf("3x3 sharpen over a 32x32 encrypted image "
           "(8 hoisted rotations + 9 PMults)\n");
    printf("center pixel: %.4f | max interior error: %.2e\n",
           out[(kH / 2) * kW + kW / 2].real(), worst);
    printf(worst < 1e-3 ? "OK\n" : "FAILED\n");
    return worst < 1e-3 ? 0 : 1;
}
