/**
 * @file
 * Encrypted logistic-regression inference — the workload class HELR
 * (Table 5 of the paper) trains. A plaintext-trained model scores
 * *encrypted* feature vectors: inner product via rotations, then a
 * degree-3 polynomial sigmoid, all under CKKS.
 */
#include <cmath>
#include <cstdio>

#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

int
main()
{
    using namespace bts;

    CkksParams params;
    params.n = 1 << 12;
    params.max_level = 8;
    params.dnum = 2;
    const CkksContext ctx(params);
    const CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx, 11);
    const SecretKey sk = keygen.gen_secret_key();
    const EvalKey mult_key = keygen.gen_mult_key(sk);
    Encryptor encryptor(ctx, 12);
    const Decryptor decryptor(ctx);
    const Evaluator eval(ctx, encoder);

    // 16 features packed per 16-slot block; 64 samples in 1024 slots.
    constexpr int kFeatures = 16;
    constexpr int kSamples = 64;
    constexpr std::size_t kSlots = kFeatures * kSamples;

    // A fixed "trained" model and synthetic patient features.
    std::vector<double> weights(kFeatures);
    for (int f = 0; f < kFeatures; ++f) {
        weights[f] = 0.2 * std::sin(0.7 * f) - 0.05;
    }
    Xoshiro256 rng(99);
    std::vector<Complex> features(kSlots);
    for (auto& v : features) {
        v = Complex(2 * rng.uniform_real() - 1, 0);
    }

    // Encrypt the features; the model stays in plaintext.
    const Ciphertext ct = encryptor.encrypt_symmetric(
        encoder.encode(features, ctx.delta(), ctx.max_level()), sk);
    std::vector<Complex> w_packed(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        w_packed[i] = Complex(weights[i % kFeatures], 0);
    }
    const Plaintext w_pt =
        encoder.encode(w_packed, ctx.delta(), ctx.max_level());

    // Inner product: elementwise w*x, then log2(16) rotate-and-add.
    std::vector<int> amounts;
    for (int r = 1; r < kFeatures; r <<= 1) amounts.push_back(r);
    const RotationKeys rot_keys = keygen.gen_rotation_keys(sk, amounts);

    Ciphertext acc = eval.mult_plain(ct, w_pt);
    eval.rescale_inplace(acc);
    for (int r = 1; r < kFeatures; r <<= 1) {
        acc = eval.add(acc, eval.rotate(acc, r, rot_keys.at(r)));
    }

    // Degree-3 sigmoid approximation 0.5 + 0.15*z - 0.0015*z^3
    // (the HELR polynomial family) on the accumulated logits.
    Ciphertext z = acc;
    Ciphertext z2 = eval.square(z, mult_key);
    eval.rescale_inplace(z2);
    Ciphertext z3 = eval.mult(z2, z, mult_key);
    eval.rescale_inplace(z3);
    Ciphertext term3 = eval.mult_const_to_scale(z3, -0.0015, z3.scale);
    Ciphertext term1 = eval.mult_const_to_scale(z, 0.15, term3.scale);
    Ciphertext sig = eval.add(term1, term3);
    eval.add_const_inplace(sig, Complex(0.5, 0.0));

    // Decrypt the scores at the block heads and compare.
    const auto scores = encoder.decode(decryptor.decrypt(sig, sk));
    printf("sample   encrypted-score   plaintext-score\n");
    double worst = 0;
    for (int s = 0; s < kSamples; ++s) {
        double logit = 0;
        for (int f = 0; f < kFeatures; ++f) {
            logit +=
                weights[f] * features[s * kFeatures + f].real();
        }
        const double expect =
            0.5 + 0.15 * logit - 0.0015 * logit * logit * logit;
        const double got = scores[s * kFeatures].real();
        if (s < 5) printf("%4d %17.6f %17.6f\n", s, got, expect);
        worst = std::max(worst, std::abs(got - expect));
    }
    printf("...\nmax |error| over %d samples: %.2e\n", kSamples, worst);
    printf(worst < 1e-3 ? "OK\n" : "FAILED\n");
    return worst < 1e-3 ? 0 : 1;
}
