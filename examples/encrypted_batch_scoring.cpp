/**
 * @file
 * Encrypted batch scoring through the serving harness: N clients each
 * submit an encrypted feature vector; the server scores every request
 * against a plaintext model (inner product + degree-3 sigmoid, the
 * HELR polynomial family) on its worker lanes and hands each client
 * back an encrypted score. One Graph definition serves all clients —
 * the runtime caches its evk handles and CMult plaintexts, so later
 * requests hit warm handles.
 *
 * The flow is the full production shape: encrypt -> submit(graph,
 * binding) -> future -> decrypt, with jobs/s and p50/p99 latency from
 * the server's stats.
 */
#include <cmath>
#include <cstdio>
#include <future>
#include <vector>

#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "runtime/server.h"

int
main()
{
    using namespace bts;

    CkksParams params;
    params.n = 1 << 10;
    params.max_level = 6;
    params.dnum = 2;
    const CkksContext ctx(params);
    const CkksEncoder encoder(ctx);
    const Evaluator eval(ctx, encoder);
    KeyGenerator keygen(ctx, 31);
    Encryptor encryptor(ctx, 32);
    const Decryptor decryptor(ctx);
    const SecretKey sk = keygen.gen_secret_key();
    const EvalKey mult_key = keygen.gen_mult_key(sk);
    const RotationKeys rot_keys =
        keygen.gen_rotation_keys(sk, {1, 2, 4, 8});

    constexpr int kFeatures = 16;
    constexpr int kClients = 8;
    const std::size_t slots = ctx.n() / 2;

    // The plaintext-trained model.
    std::vector<double> weights(kFeatures);
    for (int f = 0; f < kFeatures; ++f) {
        weights[f] = 0.3 * std::sin(0.9 * f) - 0.1;
    }

    // Score graph, shared by every request: zero-padded features mean
    // the 16-wide rotation log-tree leaves the full inner product in
    // slot 0; a Horner chain then applies the degree-3 sigmoid
    // 0.5 + 0.15 z - 0.0015 z^3. Spends 1 + 3 levels.
    runtime::GraphTraits traits;
    traits.max_level = ctx.max_level();
    traits.bootstrap_out_level = ctx.max_level();
    traits.delta = ctx.delta();
    runtime::Graph graph("batch_scoring", traits);
    const runtime::Value x = graph.input(traits.max_level, traits.delta);
    const runtime::Value w =
        graph.plain_input(traits.max_level, traits.delta);
    runtime::Value z = graph.hrescale(graph.pmult(x, w));
    for (int r = 1; r < kFeatures; r <<= 1) {
        z = graph.hadd(z, graph.hrot(z, r));
    }
    runtime::Value acc = graph.hrescale(graph.cmult(z, -0.0015));
    acc = graph.hrescale(graph.hmult(acc, z)); // -0.0015 z^2
    acc = graph.cadd(acc, Complex(0.15, 0.0));
    acc = graph.hrescale(graph.hmult(acc, z)); // 0.15 z - 0.0015 z^3
    acc = graph.cadd(acc, Complex(0.5, 0.0));
    graph.mark_output(acc);

    // Encode the model once; every request shares the handle.
    std::vector<Complex> w_slots(slots, Complex(0, 0));
    for (int f = 0; f < kFeatures; ++f) {
        w_slots[f] = Complex(weights[f], 0);
    }
    const Plaintext w_pt =
        encoder.encode(w_slots, ctx.delta(), ctx.max_level());

    // Each client's features, plaintext-side reference score included.
    Xoshiro256 rng(7);
    std::vector<std::vector<double>> features(kClients);
    std::vector<double> reference(kClients);
    for (int c = 0; c < kClients; ++c) {
        features[c].resize(kFeatures);
        double dot = 0;
        for (int f = 0; f < kFeatures; ++f) {
            features[c][f] = 2 * rng.uniform_real() - 1;
            dot += features[c][f] * weights[f];
        }
        reference[c] = 0.5 + 0.15 * dot - 0.0015 * dot * dot * dot;
    }

    runtime::EvalResources res;
    res.eval = &eval;
    res.encoder = &encoder;
    res.mult_key = &mult_key;
    res.rot_keys = &rot_keys;

    runtime::ServerOptions opts;
    opts.lanes = 2;
    runtime::GraphServer server(res, opts);

    // encrypt -> submit; each job owns its encrypted payload.
    std::vector<std::future<runtime::JobResult>> futures;
    for (int c = 0; c < kClients; ++c) {
        std::vector<Complex> x_slots(slots, Complex(0, 0));
        for (int f = 0; f < kFeatures; ++f) {
            x_slots[f] = Complex(features[c][f], 0);
        }
        runtime::JobRequest req;
        req.graph = &graph;
        req.client = "client-" + std::to_string(c);
        req.inputs.bind(x, encryptor.encrypt_symmetric(
                               encoder.encode(x_slots, ctx.delta(),
                                              ctx.max_level()),
                               sk));
        req.inputs.bind(w, w_pt);
        futures.push_back(server.submit(std::move(req)));
    }

    // future -> decrypt: slot 0 of each result is the client's score.
    std::printf("client   score(HE)   score(plain)   |err|\n");
    double worst = 0;
    for (int c = 0; c < kClients; ++c) {
        const runtime::JobResult r = futures[c].get();
        const auto dec =
            encoder.decode(decryptor.decrypt(r.outputs[0], sk));
        const double got = dec[0].real();
        const double err = std::abs(got - reference[c]);
        worst = std::max(worst, err);
        std::printf("%6d   %9.6f   %12.6f   %.2e\n", c, got,
                    reference[c], err);
    }

    server.drain();
    const runtime::ServerStats stats = server.stats();
    std::printf("\n%zu jobs on %d lanes: %.1f jobs/s, "
                "p50 %.1f ms, p99 %.1f ms\n",
                stats.completed, server.lanes(), stats.jobs_per_s,
                1e3 * stats.p50_latency_s, 1e3 * stats.p99_latency_s);
    std::printf("max |HE - plain| score error: %.2e\n", worst);
    return worst < 1e-3 ? 0 : 1;
}
