/**
 * @file
 * Quickstart: encrypt two real vectors, compute (x*y + x) homomorphically,
 * decrypt, and compare against the plaintext result.
 *
 * Uses a small (insecure — see DESIGN.md) parameter set so it runs in
 * well under a second; the API is identical at production sizes.
 */
#include <cstdio>

#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

int
main()
{
    using namespace bts;

    // 1. Parameters and context: N = 2^12, 8 levels, dnum = 2.
    CkksParams params;
    params.n = 1 << 12;
    params.max_level = 8;
    params.dnum = 2;
    const CkksContext ctx(params);
    printf("CKKS instance: N=%zu, L=%d, dnum=%d, Delta=2^%d\n", ctx.n(),
           ctx.max_level(), ctx.dnum(), params.scale_bits);

    // 2. Keys.
    KeyGenerator keygen(ctx, /*seed=*/42);
    const SecretKey sk = keygen.gen_secret_key();
    const PublicKey pk = keygen.gen_public_key(sk);
    const EvalKey mult_key = keygen.gen_mult_key(sk);

    // 3. Encode + encrypt two messages (1024 slots each).
    const CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, /*seed=*/7);
    std::vector<Complex> x(1024), y(1024);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = Complex(0.001 * static_cast<double>(i), 0);
        y[i] = Complex(1.0 - 0.0005 * static_cast<double>(i), 0);
    }
    const Ciphertext ct_x = encryptor.encrypt_public(
        encoder.encode(x, ctx.delta(), ctx.max_level()), pk);
    const Ciphertext ct_y = encryptor.encrypt_public(
        encoder.encode(y, ctx.delta(), ctx.max_level()), pk);

    // 4. Compute x*y + x under encryption.
    const Evaluator eval(ctx, encoder);
    Ciphertext prod = eval.mult(ct_x, ct_y, mult_key);
    eval.rescale_inplace(prod);
    Ciphertext xy_plus_x = eval.add(prod, ct_x);

    // 5. Decrypt and verify.
    const Decryptor decryptor(ctx);
    const auto result =
        encoder.decode(decryptor.decrypt(xy_plus_x, sk));
    double worst = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double expect = (x[i] * y[i] + x[i]).real();
        worst = std::max(worst, std::abs(result[i].real() - expect));
    }
    printf("slot[1]   = %.6f (expect %.6f)\n", result[1].real(),
           (x[1] * y[1] + x[1]).real());
    printf("slot[512] = %.6f (expect %.6f)\n", result[512].real(),
           (x[512] * y[512] + x[512]).real());
    printf("max error over 1024 slots: %.2e\n", worst);
    printf(worst < 1e-4 ? "OK\n" : "FAILED\n");
    return worst < 1e-4 ? 0 : 1;
}
