/**
 * @file
 * Accelerator explorer: drive the BTS simulator interactively-ish —
 * pick an instance, print its derived parameters, run the
 * T_mult microbenchmark and the three applications, and show how the
 * scratchpad size moves the needle. The one-stop tour of the
 * architecture side of this repository.
 */
#include <cstdio>

#include "baselines/published.h"
#include "hwparams/explorer.h"
#include "sim/engine.h"
#include "sim/timeline.h"
#include "workloads/workloads.h"

int
main(int argc, char** argv)
{
    using namespace bts;
    // Optionally select the instance: 1, 2 or 3 (default 2).
    int pick = argc > 1 ? std::atoi(argv[1]) : 2;
    if (pick < 1 || pick > 3) pick = 2;
    const auto inst = hw::table4_instances()[pick - 1];

    printf("==== %s: N=%zu, L=%d, dnum=%d ====\n", inst.name.c_str(),
           inst.n, inst.max_level, inst.dnum);
    printf("log PQ %.0f bits -> lambda = %.1f\n", inst.log_pq(),
           inst.lambda());
    printf("ct %.0f MiB | evk %.0f MiB | temp %.0f MB | usable levels "
           "%d\n",
           inst.ct_bytes(inst.max_level) / (1 << 20),
           inst.evk_bytes(inst.max_level) / (1 << 20),
           inst.temp_bytes() / 1e6, inst.usable_levels());
    printf("min NTTU (Eq. 10): %.0f | min-bound Tmult,a/slot: %.1f ns\n",
           hw::min_nttu(inst), hw::min_bound_tmult_ns(inst));

    const sim::BtsConfig hw;
    const sim::BtsSimulator s(hw, inst);

    printf("\n-- one max-level HMult --\n");
    const auto tl = sim::hmult_timeline(hw, inst);
    printf("latency %.1f us (HBM util %.0f%%, NTTU %.0f%%, BConvU "
           "%.0f%%)\n",
           tl.total_ns / 1e3, tl.hbm_util * 100, tl.nttu_busy_frac * 100,
           tl.bconv_busy_frac * 100);

    printf("\n-- workloads on the 512MB-scratchpad BTS --\n");
    const auto mb = s.run(workloads::tmult_microbench(inst));
    printf("Tmult,a/slot: %.1f ns (bootstrap %.1f ms, ct-cache hit "
           "%.0f%%)\n",
           mb.tmult_a_slot_ns, mb.boot_s * 1e3, mb.cache_hit_rate * 100);
    const auto helr_trace = workloads::helr(inst);
    const auto helr = s.run(helr_trace);
    printf("HELR: %.1f ms/iter (%d bootstraps/30 iters)\n",
           helr.total_s * 1e3 / 30, helr_trace.bootstrap_count);
    const auto rn_trace = workloads::resnet20(inst);
    const auto rn = s.run(rn_trace);
    printf("ResNet-20: %.2f s (%d bootstraps) -> %.0fx over the CPU\n",
           rn.total_s, rn_trace.bootstrap_count,
           baselines::lattigo_cpu().resnet20_s / rn.total_s);

    printf("\n-- scratchpad sensitivity (Tmult,a/slot) --\n");
    for (int mbytes : {256, 384, 512, 1024, 2048}) {
        sim::BtsConfig cfg;
        cfg.scratchpad_bytes = static_cast<double>(mbytes) * (1 << 20);
        const auto r = sim::BtsSimulator(cfg, inst)
                           .run(workloads::tmult_microbench(inst));
        printf("  %4d MB: %.1f ns (energy %.2f J)\n", mbytes,
               r.tmult_a_slot_ns, r.energy_j);
    }
    return 0;
}
