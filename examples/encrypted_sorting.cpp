/**
 * @file
 * Encrypted sorting, end to end: build the bitonic compare-exchange
 * network from runtime/apps/sort.h, execute it on real ciphertexts
 * (including every mid-circuit Bootstrap refresh the level budget
 * forces), and verify the decrypted result block-by-block against
 * std::sort.
 *
 * The inputs are drawn from the grid {-0.75, -0.25, 0.25, 0.75}: six
 * rounds of the sign kernel g(x) = 1.5x - 0.5x^3 saturate sign() to
 * +-1 within ~4e-4 on that spacing, so rounding the decrypted slots
 * back to the grid recovers the exact sorted order — the accuracy
 * methodology documented in docs/APPLICATIONS.md.
 *
 * Instance: the bootstrap-capable toy instance the runtime test suites
 * share (N = 2^8, 64 slots, radix-8 CtS/StC, L = 20 for 8 usable
 * levels after the bootstrap budget). Insecure, small, and slow-ish —
 * the point is the full circuit shape, not performance.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "ckks/bootstrapper.h"
#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "runtime/apps/sort.h"
#include "runtime/executor.h"

int
main()
{
    using namespace bts;
    using namespace bts::runtime;

    // --- the bootstrap-capable toy instance -------------------------
    CkksParams params;
    params.n = 1 << 8;
    params.max_level = 20;
    params.dnum = 3;
    params.hamming_weight = 32;
    params.seed = 77;
    const CkksContext ctx(params);
    const CkksEncoder encoder(ctx);
    const Evaluator eval(ctx, encoder);
    KeyGenerator keygen(ctx, 78);
    Encryptor encryptor(ctx, 79);
    const Decryptor decryptor(ctx);
    const SecretKey sk = keygen.gen_secret_key();
    const EvalKey mult_key = keygen.gen_mult_key(sk);
    const EvalKey conj_key = keygen.gen_conjugation_key(sk);

    BootstrapConfig boot_cfg;
    boot_cfg.slots = 64;
    boot_cfg.sine_degree = 119;
    boot_cfg.cts_radix = 8;
    boot_cfg.stc_radix = 8;
    Bootstrapper boot(ctx, encoder, eval, boot_cfg);

    // --- build the sorting graph ------------------------------------
    GraphTraits traits;
    traits.max_level = ctx.max_level();
    traits.delta = ctx.delta();
    {
        // Probe run: one refresh of an exhausted ciphertext pins the
        // refreshed level the graph metadata needs.
        auto amounts = boot.required_rotations();
        const RotationKeys probe_keys =
            keygen.gen_rotation_keys(sk, amounts);
        boot.set_keys(&mult_key, &probe_keys, &conj_key);
        const std::vector<Complex> z(64, Complex(0.1, 0.0));
        const Ciphertext exhausted = encryptor.encrypt_symmetric(
            encoder.encode(z, ctx.delta(), 0), sk);
        traits.bootstrap_out_level = boot.bootstrap(exhausted).level;
    }

    apps::SortConfig cfg = apps::SortConfig::functional(); // blocks of 4
    const apps::SortApp app = apps::build_sort(cfg, traits);
    printf("sort graph: %zu ops, %d bootstraps, %zu stages\n",
           app.graph.num_nodes(),
           app.graph.count_kind(OpKind::kBootstrap),
           app.stages.size());

    // Rotation keys: the bootstrap pipeline's plus the graph's +-d.
    auto amounts = boot.required_rotations();
    for (const int r : app.graph.required_rotations()) {
        amounts.push_back(r);
    }
    const RotationKeys rot_keys = keygen.gen_rotation_keys(sk, amounts);
    boot.set_keys(&mult_key, &rot_keys, &conj_key);

    // --- encrypt a batch of blocks and bind the stage masks ---------
    const std::size_t slots = 64;
    const std::size_t block = std::size_t{1} << cfg.log_elements;
    const double grid[4] = {-0.75, -0.25, 0.25, 0.75};
    Xoshiro256 rng(2026);
    std::vector<Complex> values(slots);
    for (auto& v : values) {
        v = Complex(grid[rng.next() & 3], 0.0);
    }

    Binding b;
    b.bind(app.values,
           encryptor.encrypt_symmetric(
               encoder.encode(values, traits.delta,
                              traits.bootstrap_out_level),
               sk));
    for (const auto& st : app.stages) {
        const auto bind_mask = [&](Value v, std::vector<Complex> mask) {
            b.bind(v, encoder.encode(mask, traits.delta,
                                     traits.max_level));
        };
        bind_mask(st.mask_lo,
                  apps::sort_mask_lo(cfg.log_elements, st.distance, slots));
        bind_mask(st.mask_hi,
                  apps::sort_mask_hi(cfg.log_elements, st.distance, slots));
        bind_mask(st.select,
                  apps::sort_select_mask(cfg.log_elements, st.phase,
                                         st.distance, slots));
    }

    // --- run + verify ------------------------------------------------
    EvalResources res;
    res.eval = &eval;
    res.encoder = &encoder;
    res.mult_key = &mult_key;
    res.rot_keys = &rot_keys;
    res.conj_key = &conj_key;
    res.bootstrapper = &boot;
    ExecOptions opts;
    opts.lanes = 2;
    const Executor exec(res, opts);
    const auto outs = exec.run(app.graph, std::move(b));
    const auto got = encoder.decode(decryptor.decrypt(outs[0], sk));

    const auto round_to_grid = [&](double x) {
        double best = grid[0];
        for (const double g : grid) {
            if (std::abs(x - g) < std::abs(x - best)) best = g;
        }
        return best;
    };

    int bad_blocks = 0;
    for (std::size_t base = 0; base < slots; base += block) {
        std::vector<double> want;
        for (std::size_t i = 0; i < block; ++i) {
            want.push_back(values[base + i].real());
        }
        std::sort(want.begin(), want.end());
        bool ok = true;
        for (std::size_t i = 0; i < block; ++i) {
            ok &= round_to_grid(got[base + i].real()) == want[i];
        }
        bad_blocks += ok ? 0 : 1;
        if (base == 0) {
            printf("block 0:  in ");
            for (std::size_t i = 0; i < block; ++i) {
                printf("%+.2f ", values[i].real());
            }
            printf(" ->  out ");
            for (std::size_t i = 0; i < block; ++i) {
                printf("%+.3f ", got[i].real());
            }
            printf("\n");
        }
    }
    printf("%zu blocks of %zu sorted under encryption: %s\n",
           slots / block, block,
           bad_blocks == 0 ? "all exact after rounding" : "MISMATCH");
    return bad_blocks == 0 ? 0 : 1;
}
