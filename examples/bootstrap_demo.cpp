/**
 * @file
 * Bootstrapping demo: exhaust a ciphertext's levels with real
 * multiplications, refresh it (ModRaise -> CoeffToSlot -> EvalMod ->
 * SlotToCoeff), then keep computing — the capability that makes FHE
 * "fully" homomorphic and the operation BTS accelerates.
 *
 * Runs a genuine (small, insecure-parameter) bootstrap; expect a few
 * seconds of CPU time — the point of the paper is that BTS does the
 * equivalent full-size refresh in ~10 ms.
 */
#include <chrono>
#include <cstdio>

#include "ckks/bootstrapper.h"
#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"

int
main()
{
    using namespace bts;
    using Clock = std::chrono::steady_clock;

    CkksParams params;
    params.n = 1 << 11;
    params.max_level = 14;
    params.dnum = 3;
    params.q0_bits = 50;
    params.hamming_weight = 32;
    const CkksContext ctx(params);
    const CkksEncoder encoder(ctx);
    const Evaluator eval(ctx, encoder);
    KeyGenerator keygen(ctx, 5);
    const SecretKey sk = keygen.gen_secret_key();
    const EvalKey mult_key = keygen.gen_mult_key(sk);
    const EvalKey conj_key = keygen.gen_conjugation_key(sk);
    Encryptor encryptor(ctx, 6);
    const Decryptor decryptor(ctx);

    BootstrapConfig cfg;
    cfg.slots = 512;
    cfg.k_range = 12.0;
    cfg.sine_degree = 119;
    // Factored CtS/StC (radix 32 -> 2 sparse stages per direction, ~5x
    // fewer diagonal PMults and >2x fewer key-switches than the dense
    // single-shot transform); set both to 0 for the dense oracle.
    cfg.cts_radix = 32;
    cfg.stc_radix = 32;
    printf("setting up bootstrapper (factored DFT stages + rotation "
           "keys)...\n");
    Bootstrapper boot(ctx, encoder, eval, cfg);
    const RotationKeys rot_keys =
        keygen.gen_rotation_keys(sk, boot.required_rotations());
    boot.set_keys(&mult_key, &rot_keys, &conj_key);

    // Encrypt and burn all levels with real squarings of sqrt(x).
    std::vector<Complex> z(cfg.slots);
    Xoshiro256 rng(3);
    for (auto& v : z) v = Complex(0.25 + 0.5 * rng.uniform_real(), 0);
    Ciphertext ct = encryptor.encrypt_symmetric(
        encoder.encode(z, ctx.delta(), 1), sk);
    printf("level before work: %d\n", ct.level);
    Ciphertext sq = eval.square(ct, mult_key); // consume the last level
    eval.rescale_inplace(sq);
    printf("level after squaring: %d  (exhausted: no more HMult "
           "possible)\n",
           sq.level);

    const auto t0 = Clock::now();
    const Ciphertext fresh = boot.bootstrap(sq);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    printf("bootstrap done in %.2f s -> level %d\n", secs, fresh.level);

    // Prove the refreshed ciphertext is usable: square again.
    Ciphertext sq2 = eval.square(fresh, mult_key);
    eval.rescale_inplace(sq2);
    const auto got = encoder.decode(decryptor.decrypt(sq2, sk));
    double worst = 0;
    for (std::size_t i = 0; i < z.size(); ++i) {
        const double expect = std::pow(z[i].real(), 4.0);
        worst = std::max(worst, std::abs(got[i].real() - expect));
    }
    printf("computed x^4 across the bootstrap: max error %.2e\n", worst);
    printf(worst < 5e-2 ? "OK\n" : "FAILED\n");
    return worst < 5e-2 ? 0 : 1;
}
